"""Thread-stress tests for the shared caches (the PR-3 satellite).

Eight-plus threads hammer ``repro.compile`` / ``match`` / ``match_all`` /
``purge`` / ``cache_stats`` simultaneously; every verdict is checked
against a single-threaded oracle computed up front from fresh, uncached,
uncompiled patterns, and every stats snapshot is checked against the cache
invariants (no negative eviction counts, size bounded by max_size —
exactly the numbers the old ``lru_cache``+global-counter implementation
could corrupt when a purge raced a miss).  The CI ``service`` job runs
this module under ``PYTHONDEVMODE=1``.
"""

from __future__ import annotations

import random
import threading

import pytest

import repro

#: Deterministic expressions spanning the dispatch classes: star-free
#: (multi-matcher batch path), starred (compiled-runtime path), and a
#: DTD-'+' fallback (k-occurrence semantics).
EXPRESSIONS = [
    "(ab+b(b?)a)*",
    "(a+b)(c?)d",
    "((a+b)c)*",
    "a(b+c)(d?)",
    "(ab)*",
]

THREADS = 8
ITERATIONS = 150


@pytest.fixture(autouse=True)
def _fresh_caches():
    repro.purge()
    yield
    repro.purge()


def _corpus():
    """(expr, words) pairs plus a single-threaded oracle of every verdict.

    The oracle uses private, uncompiled patterns so it shares no state —
    no cache entry, no runtime row — with the threads under test.
    """
    rng = random.Random(20120521)
    corpus: dict[str, list[tuple[str, ...]]] = {}
    oracle: dict[tuple[str, tuple[str, ...]], bool] = {}
    for expr in EXPRESSIONS:
        reference = repro.Pattern(expr, compiled=False)
        alphabet = reference.tree.alphabet.as_list()
        words = {(), ("z",)}
        for _ in range(12):
            words.add(tuple(rng.choice(alphabet) for _ in range(rng.randint(1, 10))))
        words.update({("a", "b"), ("a", "b", "b", "a"), ("a", "c", "d"), ("b", "d")})
        corpus[expr] = sorted(words)
        for word in words:
            oracle[expr, word] = reference.match(list(word))
    return corpus, oracle


def _run_threads(worker, count: int = THREADS) -> list:
    failures: list = []
    barrier = threading.Barrier(count)

    def body(seed: int):
        try:
            barrier.wait()
            worker(random.Random(seed))
        except Exception as error:  # noqa: BLE001 - surfaced via the assertion below
            failures.append(error)

    threads = [threading.Thread(target=body, args=(seed,)) for seed in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return failures


def test_stress_compile_match_purge_stats_agree_with_oracle():
    corpus, oracle = _corpus()
    expressions = list(corpus)

    def worker(rng: random.Random):
        for _ in range(ITERATIONS):
            expr = rng.choice(expressions)
            roll = rng.random()
            if roll < 0.02:
                repro.purge()
            elif roll < 0.08:
                stats = repro.stats()["pattern_cache"]
                assert stats["evictions"] >= 0
                assert 0 <= stats["size"] <= stats["max_size"]
            elif roll < 0.25:
                batch = rng.sample(corpus[expr], k=min(6, len(corpus[expr])))
                verdicts = repro.compile(expr).match_all([list(word) for word in batch])
                assert verdicts == [oracle[expr, word] for word in batch]
            else:
                word = rng.choice(corpus[expr])
                assert repro.compile(expr).match(list(word)) == oracle[expr, word]

    failures = _run_threads(worker)
    assert not failures, failures[0]


def test_stress_single_shared_pattern():
    """All 8 threads share one cached pattern object and its runtime."""
    corpus, oracle = _corpus()
    expr = "(ab+b(b?)a)*"
    pattern = repro.compile(expr)

    def worker(rng: random.Random):
        for _ in range(ITERATIONS):
            word = rng.choice(corpus[expr])
            assert pattern.match(list(word)) == oracle[expr, word]

    failures = _run_threads(worker)
    assert not failures, failures[0]
    stats = pattern.stats()
    assert stats is not None
    assert stats["transitions_memoized"] == stats["misses"]


def test_purge_racing_misses_keeps_cache_consistent():
    """The satellite bug: purge concurrent with misses must stay atomic.

    Half the threads compile an endless stream of *distinct* patterns
    (all misses, forcing evictions), the other half purge in a loop.
    Afterwards the counters must satisfy the cache invariants — with the
    pre-fix implementation this reliably produced negative eviction
    counts and resurrected entries.
    """
    from repro.regex.ast import Sym

    stop = threading.Event()

    def compiler(rng: random.Random):
        base = rng.randrange(10**9)
        for index in range(ITERATIONS * 4):
            repro.compile(Sym(f"s{base}-{index}"))
            if stop.is_set():
                break

    def purger(rng: random.Random):
        for _ in range(40):
            repro.purge()
            stats = repro.stats()["pattern_cache"]
            assert stats["evictions"] >= 0
            assert 0 <= stats["size"] <= stats["max_size"]

    def worker(rng: random.Random):
        if rng.random() < 0.5:
            compiler(rng)
        else:
            purger(rng)

    try:
        failures = _run_threads(worker)
    finally:
        stop.set()
    assert not failures, failures[0]
    stats = repro.stats()["pattern_cache"]
    assert stats["evictions"] >= 0
    assert 0 <= stats["size"] <= stats["max_size"]


def test_concurrent_misses_for_one_key_build_one_pattern():
    """Racing compiles of the same expression converge on a single object."""
    results: list[repro.Pattern] = []
    barrier = threading.Barrier(THREADS)

    def worker():
        barrier.wait()
        results.append(repro.compile("(concurrent+cold)(start?)"))

    threads = [threading.Thread(target=worker) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == THREADS
    assert len({id(pattern) for pattern in results}) == 1
    assert repro.stats()["pattern_cache"]["misses"] == 1
