"""Unit tests for the structural classifiers (k-ORE, CHARE, star-free, c_e)."""


from repro.regex.generators import (
    bounded_occurrence,
    chare,
    deep_alternation,
    mixed_content,
    star_free_chain,
)
from repro.regex.parser import parse
from repro.regex.properties import (
    alternation_depth,
    classify,
    is_chare,
    is_k_occurrence,
    is_one_ore,
    is_simple,
    is_star_free,
    occurrence_bound,
    plus_depth_refined,
    symbol_occurrences,
)


class TestOccurrenceCounts:
    def test_symbol_occurrences(self):
        counts = symbol_occurrences(parse("(ab+b(b?)a)*"))
        assert counts == {"a": 2, "b": 3}

    def test_occurrence_bound(self):
        assert occurrence_bound(parse("(ab+b(b?)a)*")) == 3
        assert occurrence_bound(parse("abc")) == 1

    def test_is_k_occurrence(self):
        assert is_k_occurrence(parse("aba"), 2)
        assert not is_k_occurrence(parse("aba"), 1)

    def test_one_ore(self):
        assert is_one_ore(parse("a(b+c)*d?"))
        assert not is_one_ore(parse("aa"))

    def test_bounded_occurrence_family_has_exact_bound(self):
        assert occurrence_bound(bounded_occurrence(3, 4)) == 3

    def test_counts_work_on_parse_trees_and_text(self):
        assert occurrence_bound("aab") == 2
        from repro.regex.parse_tree import build_parse_tree

        assert occurrence_bound(build_parse_tree("aab")) == 2


class TestStarFree:
    def test_star_free_expressions(self):
        assert is_star_free(parse("a?b(c+d)"))
        assert is_star_free(star_free_chain(6))

    def test_starred_expressions(self):
        assert not is_star_free(parse("ab*"))
        assert not is_star_free(mixed_content(3))


class TestAlternationDepth:
    def test_single_symbol(self):
        assert alternation_depth(parse("a")) == 0

    def test_flat_union(self):
        assert alternation_depth(parse("a+b+c")) == 1

    def test_flat_concat(self):
        assert alternation_depth(parse("abc")) == 1

    def test_union_of_concats(self):
        assert alternation_depth(parse("ab+cd")) == 2

    def test_concat_of_unions(self):
        assert alternation_depth(parse("(a+b)(c+d)")) == 2

    def test_four_levels(self):
        # union over concat over union over concat on the path to b
        assert alternation_depth(parse("((a+bc)d)+e")) == 4

    def test_stars_do_not_count(self):
        assert alternation_depth(parse("(a+b)*")) == 1

    def test_deep_alternation_family_grows(self):
        depths = [alternation_depth(deep_alternation(i)) for i in (1, 3, 5)]
        assert depths == sorted(depths)
        assert depths[-1] > depths[0]

    def test_refined_bound_is_at_most_alternation_depth(self):
        for text in ["a", "ab+cd", "((a+bc)d)+e", "(a+b)(c+d)e*"]:
            assert plus_depth_refined(parse(text)) <= alternation_depth(parse(text))

    def test_chare_has_small_alternation_depth(self):
        assert alternation_depth(chare(8)) <= 2


class TestLiteratureClasses:
    def test_chare_family_is_chare(self):
        assert is_chare(chare(5))

    def test_chare_requires_single_occurrence(self):
        assert not is_chare(parse("(a+b)a"))

    def test_chare_requires_symbol_factors(self):
        assert not is_chare(parse("(ab+c)d"))

    def test_simple_allows_decorated_symbols_in_factors(self):
        expr = parse("(a*+b?)c", dialect="paper")
        assert is_simple(expr)
        assert not is_chare(expr)

    def test_simple_rejects_nested_factors(self):
        assert not is_simple(parse("((ab)+c)d"))

    def test_mixed_content_is_simple_but_not_chare_due_to_star(self):
        # (a0+a1+a2)* : a single starred factor of distinct symbols is a CHARE.
        assert is_chare(mixed_content(3))
        assert is_simple(mixed_content(3))


class TestClassify:
    def test_classify_summary_fields(self):
        summary = classify("(ab+b(b?)a)*")
        assert summary["positions"] == 5
        assert summary["alphabet_size"] == 2
        assert summary["occurrence_bound"] == 3
        assert summary["star_free"] is False
        assert summary["one_ore"] is False
        assert summary["has_numeric"] is False
        assert summary["alternation_depth"] >= 2

    def test_classify_accepts_ast(self):
        summary = classify(chare(3))
        assert summary["chare"] is True
