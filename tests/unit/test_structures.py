"""Unit tests for the algorithmic substrates: RMQ, LCA, lazy arrays, vEB,
heavy paths and lowest colored ancestors."""

import random

import pytest

from repro.regex.parse_tree import build_parse_tree
from repro.structures.colored_ancestor import ColoredAncestorIndex
from repro.structures.heavy_path import HeavyPathDecomposition
from repro.structures.lazy_array import LazyArray
from repro.structures.lca import LCAIndex
from repro.structures.rmq import SparseTableRMQ
from repro.structures.veb import VanEmdeBoasTree


class TestSparseTableRMQ:
    def test_single_element(self):
        rmq = SparseTableRMQ([7])
        assert rmq.argmin(0, 1) == 0
        assert rmq.min(0, 1) == 7

    def test_rejects_empty_array(self):
        with pytest.raises(ValueError):
            SparseTableRMQ([])

    def test_rejects_bad_ranges(self):
        rmq = SparseTableRMQ([1, 2, 3])
        with pytest.raises(IndexError):
            rmq.argmin(2, 2)
        with pytest.raises(IndexError):
            rmq.argmin(0, 4)

    def test_ties_break_to_the_left(self):
        rmq = SparseTableRMQ([5, 1, 1, 5])
        assert rmq.argmin(0, 4) == 1

    def test_against_naive_minimum(self, rng):
        values = [rng.randint(0, 50) for _ in range(200)]
        rmq = SparseTableRMQ(values)
        for _ in range(500):
            lo = rng.randrange(len(values))
            hi = rng.randint(lo + 1, len(values))
            assert rmq.min(lo, hi) == min(values[lo:hi])


class TestLCAIndex:
    def test_lca_on_parse_tree_matches_naive(self, rng):
        from repro.regex.generators import random_expression

        for _ in range(30):
            tree = build_parse_tree(random_expression(rng, rng.randint(1, 12)))
            index = LCAIndex(tree.root, tree.nodes)
            nodes = tree.nodes
            for _ in range(40):
                a = rng.choice(nodes)
                b = rng.choice(nodes)
                assert index.lca(a, b) is tree.lca_naive(a, b)

    def test_lca_of_node_with_itself(self):
        tree = build_parse_tree("(ab)c")
        index = LCAIndex(tree.root, tree.nodes)
        for node in tree.nodes:
            assert index.lca(node, node) is node

    def test_lca_is_symmetric(self):
        tree = build_parse_tree("(a+b)(c+d)")
        index = LCAIndex(tree.root, tree.nodes)
        a = tree.positions_by_symbol("a")[0]
        d = tree.positions_by_symbol("d")[0]
        assert index.lca(a, d) is index.lca(d, a)

    def test_is_ancestor_and_depth(self):
        tree = build_parse_tree("ab*")
        index = LCAIndex(tree.root, tree.nodes)
        assert index.is_ancestor(tree.root, tree.positions[1])
        assert not index.is_ancestor(tree.positions[1], tree.root)
        assert index.depth_of(tree.root) == 0
        assert index.depth_of(tree.positions[1]) > 0


class TestLazyArray:
    def test_lookup_of_unassigned_key_is_none(self):
        array = LazyArray(10)
        assert array.lookup(3) is None
        assert 3 not in array

    def test_assign_and_lookup(self):
        array = LazyArray(10)
        array.assign(3, "x")
        assert array.lookup(3) == "x"
        assert array[3] == "x"
        assert 3 in array
        assert len(array) == 1

    def test_reassignment_keeps_single_active_entry(self):
        array = LazyArray(4)
        array[2] = "a"
        array[2] = "b"
        assert array[2] == "b"
        assert len(array) == 1

    def test_reset_is_constant_time_and_clears_everything(self):
        array = LazyArray(8)
        for key in range(8):
            array[key] = key * key
        array.reset()
        assert len(array) == 0
        assert all(array[key] is None for key in range(8))
        array[5] = "fresh"
        assert array[5] == "fresh"

    def test_stale_memory_is_not_visible_after_reset(self):
        array = LazyArray(4)
        array[1] = "old"
        array.reset()
        # The value array still physically holds "old", but key 1 is inactive.
        assert array[1] is None

    def test_delete_single_key(self):
        array = LazyArray(6)
        array[1] = "x"
        array[2] = "y"
        array.delete(1)
        assert array[1] is None
        assert array[2] == "y"
        array.delete(1)  # idempotent
        assert len(array) == 1

    def test_items_and_active_keys(self):
        array = LazyArray(5)
        array[4] = "d"
        array[0] = "a"
        assert list(array.active_keys()) == [4, 0]
        assert dict(array.items()) == {4: "d", 0: "a"}

    def test_bounds_checking(self):
        array = LazyArray(3)
        with pytest.raises(IndexError):
            array.assign(3, "x")
        with pytest.raises(IndexError):
            array.lookup(-1)

    def test_against_dict_reference(self, rng):
        array = LazyArray(64)
        reference: dict[int, int] = {}
        for _ in range(2000):
            action = rng.random()
            key = rng.randrange(64)
            if action < 0.5:
                value = rng.randint(0, 100)
                array[key] = value
                reference[key] = value
            elif action < 0.9:
                assert array[key] == reference.get(key)
            else:
                array.reset()
                reference.clear()
        for key in range(64):
            assert array[key] == reference.get(key)


class TestVanEmdeBoas:
    def test_empty_tree(self):
        tree = VanEmdeBoasTree(16)
        assert tree.min is None and tree.max is None
        assert not tree
        assert tree.predecessor(10) is None
        assert tree.successor(3) is None

    def test_insert_contains_delete(self):
        tree = VanEmdeBoasTree(32)
        for value in (5, 1, 9, 30):
            tree.insert(value)
        assert all(value in tree for value in (5, 1, 9, 30))
        assert 7 not in tree
        tree.delete(9)
        assert 9 not in tree
        assert sorted(tree) == [1, 5, 30]

    def test_min_max_tracking(self):
        tree = VanEmdeBoasTree(64)
        for value in (10, 3, 40):
            tree.insert(value)
        assert tree.min == 3 and tree.max == 40
        tree.delete(3)
        assert tree.min == 10
        tree.delete(40)
        assert tree.max == 10

    def test_predecessor_successor_semantics(self):
        tree = VanEmdeBoasTree(100)
        for value in (10, 20, 30):
            tree.insert(value)
        assert tree.predecessor(25) == 20
        assert tree.predecessor(20) == 20
        assert tree.predecessor(5) is None
        assert tree.successor(25) == 30
        assert tree.successor(30) == 30
        assert tree.successor(31) is None

    def test_out_of_universe_rejected(self):
        tree = VanEmdeBoasTree(8)
        with pytest.raises(IndexError):
            tree.insert(8)

    def test_against_sorted_list_reference(self, rng):
        universe = 256
        tree = VanEmdeBoasTree(universe)
        reference: set[int] = set()
        for _ in range(3000):
            action = rng.random()
            value = rng.randrange(universe)
            if action < 0.45:
                tree.insert(value)
                reference.add(value)
            elif action < 0.7:
                tree.delete(value)
                reference.discard(value)
            elif action < 0.8:
                assert (value in tree) == (value in reference)
            elif action < 0.9:
                expected = max((v for v in reference if v <= value), default=None)
                assert tree.predecessor(value) == expected
            else:
                expected = min((v for v in reference if v >= value), default=None)
                assert tree.successor(value) == expected
        assert sorted(tree) == sorted(reference)


class TestHeavyPath:
    def test_paths_partition_the_tree(self):
        tree = build_parse_tree("(ab+c)*(d?e)")
        decomposition = HeavyPathDecomposition(tree.root, tree.nodes)
        seen = [node for path in decomposition.paths for node in path]
        assert len(seen) == len(tree.nodes)
        assert {node.index for node in seen} == {node.index for node in tree.nodes}

    def test_paths_are_vertical(self):
        tree = build_parse_tree("(ab+c)*(d?e)")
        decomposition = HeavyPathDecomposition(tree.root, tree.nodes)
        for path in decomposition.paths:
            for parent, child in zip(path, path[1:]):
                assert child.parent is parent

    def test_root_path_count_is_logarithmic(self):
        # A long concatenation chain: every root-to-leaf path should cross
        # O(log n) heavy paths.
        text = "".join(chr(ord("a") + (i % 26)) for i in range(128))
        tree = build_parse_tree(text)
        decomposition = HeavyPathDecomposition(tree.root, tree.nodes)
        deepest = max(tree.nodes, key=lambda node: node.depth)
        assert len(decomposition.paths_to_root(deepest)) <= 2 * 8  # 2*log2(256)

    def test_path_lookup_consistency(self):
        tree = build_parse_tree("(a+b)(c+d)e*")
        decomposition = HeavyPathDecomposition(tree.root, tree.nodes)
        for node in tree.nodes:
            path_id = decomposition.path_id(node)
            assert node in decomposition.paths[path_id]
            assert decomposition.head(node) is decomposition.paths[path_id][0]


class TestColoredAncestors:
    def _build(self, text, assignments):
        tree = build_parse_tree(text)
        index = ColoredAncestorIndex(tree.root, tree.nodes)
        for node_index, color in assignments:
            index.assign_color(tree.nodes[node_index], color)
        return tree, index

    def test_query_matches_naive_walk(self, rng):
        from repro.regex.generators import random_expression

        colors = ["red", "green", "blue"]
        for _ in range(25):
            tree = build_parse_tree(random_expression(rng, rng.randint(2, 12)))
            index = ColoredAncestorIndex(tree.root, tree.nodes)
            for node in tree.nodes:
                for color in colors:
                    if rng.random() < 0.2:
                        index.assign_color(node, color)
            for _ in range(30):
                node = rng.choice(tree.nodes)
                color = rng.choice(colors)
                assert index.lowest_colored_ancestor(node, color) is (
                    index.lowest_colored_ancestor_naive(node, color)
                )

    def test_reflexive_lookup(self):
        tree, index = self._build("ab", [(0, "x")])
        assert index.lowest_colored_ancestor(tree.nodes[0], "x") is tree.nodes[0]

    def test_missing_color_returns_none(self):
        tree, index = self._build("ab", [(0, "x")])
        assert index.lowest_colored_ancestor(tree.positions[1], "y") is None

    def test_multiple_colors_per_node(self):
        tree, index = self._build("ab", [(0, "x"), (0, "y")])
        assert index.colors_of(tree.nodes[0]) == {"x", "y"}
        assert index.total_assignments == 2

    def test_assignment_is_idempotent(self):
        tree, index = self._build("ab", [(0, "x"), (0, "x")])
        assert index.total_assignments == 1

    def test_colors_via_constructor_mapping(self):
        tree = build_parse_tree("ab")
        index = ColoredAncestorIndex(tree.root, tree.nodes, {0: ["x"], 2: ["y"]})
        assert index.total_assignments == 2
        leaf = tree.positions[2]
        assert index.lowest_colored_ancestor(leaf, "x") is tree.nodes[0]
