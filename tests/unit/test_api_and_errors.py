"""Unit tests for the high-level API, the XPath reference check and the error types."""

import pytest

import repro
from repro.core.xpath_check import xpath_determinism_check
from repro.errors import NotDeterministicError, RegexSyntaxError, ReproError
from repro.regex.parser import parse


class TestPattern:
    def test_compile_and_match(self):
        pattern = repro.compile("(ab+b(b?)a)*")
        assert pattern.is_deterministic
        assert pattern.match("abba")
        assert pattern.match(["a", "b"])
        assert not pattern.match("bb")
        assert pattern.match("")

    def test_match_all(self):
        pattern = repro.compile("(ab)*c")
        assert pattern.match_all(["c", "abc", "ab"]) == [True, True, False]

    def test_streaming(self):
        pattern = repro.compile("a?bc*")
        run = pattern.stream()
        assert run.feed("b")
        assert run.is_accepting()
        assert run.feed("c") and run.feed("c")
        assert run.is_accepting()

    def test_named_dialect(self):
        pattern = repro.compile("title author+ note?", dialect="named")
        assert pattern.match(["title", "author", "author"])
        assert not pattern.match(["title"])

    def test_non_deterministic_pattern_reports_and_refuses_to_match(self):
        pattern = repro.compile("(a*ba+bb)*")
        assert not pattern.is_deterministic
        assert "non-deterministic" in pattern.explain()
        with pytest.raises(NotDeterministicError):
            pattern.match("bb")

    def test_describe(self):
        summary = repro.compile("(ab)*").describe()
        assert summary["deterministic"] is True
        assert "strategy" in summary
        non_det = repro.compile("a?a").describe()
        assert non_det["deterministic"] is False
        assert "conflict" in non_det

    def test_explicit_strategy(self):
        pattern = repro.compile("(ab)*", strategy="path-decomposition")
        assert pattern.strategy == "path-decomposition"
        assert pattern.match("abab")

    def test_plus_under_iteration_uses_native_semantics(self):
        """(a+ b?)* is a deterministic content model even though its E E*
        rewriting is Glushkov-ambiguous; the Pattern must accept and match."""
        pattern = repro.compile("item+ note?", dialect="named")
        assert pattern.is_deterministic
        outer = repro.compile("(a+ b?)*", dialect="named")
        assert outer.is_deterministic
        assert not outer.tree_report.deterministic  # the rewritten tree is ambiguous
        assert outer.match(["a", "a", "b", "a"])
        assert outer.match([])
        assert not outer.match(["b"])
        assert outer.strategy == "k-occurrence"  # the sound fallback matcher

    def test_numeric_pattern(self):
        pattern = repro.compile("(ab){2,3}c")
        assert pattern.is_deterministic
        assert pattern.match("ababc")
        assert pattern.match("abababc")
        assert not pattern.match("abc")

    def test_module_level_helpers(self):
        assert repro.match("(ab)*", "abab")
        assert repro.is_deterministic("(ab)*")
        assert not repro.is_deterministic("a?a")
        assert repro.is_deterministic("(ab){2}a(b+d)")
        assert not repro.is_deterministic("(ab){1,2}a")
        assert repro.is_deterministic_numeric("(ab){2}a(b+d)")

    def test_check_deterministic_report_exposed(self):
        report = repro.check_deterministic("ab*b")
        assert not report.deterministic
        assert report.conflict is not None


class TestXPathReferenceCheck:
    def test_agrees_with_linear_test_on_paper_examples(self):
        assert xpath_determinism_check("(ab+b(b?)a)*").deterministic
        assert not xpath_determinism_check("(a*ba+bb)*").deterministic

    def test_reports_which_disjunct_fired(self):
        result = xpath_determinism_check("(a*ba+bb)*")
        assert result.violated_disjunct == "P1"
        assert not bool(result)

    def test_star_star_disjunct(self):
        result = xpath_determinism_check("(a(b?a?))*")
        assert not result.deterministic
        assert result.violated_disjunct is not None
        assert len(result.witnesses) == 3

    def test_agrees_with_linear_test_on_random_expressions(self, rng):
        from repro.core.determinism import is_deterministic
        from repro.regex.generators import random_expression

        for _ in range(120):
            expr = random_expression(rng, rng.randint(1, 8))
            assert xpath_determinism_check(expr).deterministic == is_deterministic(expr), str(expr)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(RegexSyntaxError, ReproError)
        assert issubclass(NotDeterministicError, ReproError)

    def test_syntax_error_str_contains_position(self):
        try:
            parse("a)")
        except RegexSyntaxError as error:
            assert "offset" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")

    def test_not_deterministic_error_carries_report(self):
        pattern = repro.compile("a?a")
        try:
            pattern.match("a")
        except NotDeterministicError as error:
            assert error.report is pattern.report
        else:  # pragma: no cover
            pytest.fail("expected NotDeterministicError")

    def test_xml_error_str(self):
        from repro.errors import XMLSyntaxError

        assert "line 3" in str(XMLSyntaxError("boom", line=3, column=7))
