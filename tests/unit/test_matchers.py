"""Unit tests for the Section 4 matchers (shared behaviour + per-algorithm specifics)."""

import pytest

from repro.errors import NotDeterministicError
from repro.matching import (
    STRATEGIES,
    ClimbingMatcher,
    GlushkovMatcher,
    KOccurrenceMatcher,
    LowestColoredAncestorMatcher,
    PathDecompositionMatcher,
    StarFreeMultiMatcher,
    SubsetKOccurrenceMatcher,
    build_matcher,
    select_strategy,
)
from repro.regex.generators import (
    bounded_occurrence,
    deep_alternation,
    mixed_content,
    star_free_chain,
)
from repro.regex.language import LanguageOracle
from repro.regex.parse_tree import build_parse_tree
from repro.regex.words import mutate_word, sample_member

ALL_MATCHERS = [
    ClimbingMatcher,
    GlushkovMatcher,
    KOccurrenceMatcher,
    LowestColoredAncestorMatcher,
    PathDecompositionMatcher,
]


@pytest.fixture(params=ALL_MATCHERS, ids=lambda cls: cls.name)
def matcher_class(request):
    return request.param


class TestSharedBehaviour:
    E1 = "(ab+b(b?)a)*"

    def test_accepts_paper_example_words(self, matcher_class):
        matcher = matcher_class(self.E1)
        assert matcher.accepts(list("abba"))
        assert matcher.accepts(list("bba"))
        assert matcher.accepts([])
        assert not matcher.accepts(list("bb"))
        assert not matcher.accepts(list("abz"))

    def test_rejects_non_deterministic_expressions(self, matcher_class):
        with pytest.raises(NotDeterministicError):
            matcher_class("(a*ba+bb)*")

    def test_verification_can_be_skipped(self, matcher_class):
        matcher = matcher_class("ab", verify=False)
        assert matcher.accepts(["a", "b"])

    def test_trace_starts_at_the_start_sentinel(self, matcher_class):
        matcher = matcher_class("abc")
        trace = matcher.trace(list("ab"))
        assert trace[0] is matcher.tree.start
        assert [node.symbol for node in trace[1:]] == ["a", "b"]

    def test_streaming_run(self, matcher_class):
        matcher = matcher_class(self.E1)
        run = matcher.start()
        assert run.is_accepting()  # the empty word is in L(e1)
        assert run.feed("a")
        assert not run.is_accepting()
        assert run.feed("b")
        assert run.is_accepting()
        assert not run.feed("z")
        assert not run.is_accepting()
        assert not run.feed("a")  # dead runs stay dead

    def test_feed_all(self, matcher_class):
        matcher = matcher_class(self.E1)
        run = matcher.start()
        assert run.feed_all(list("abab"))
        assert run.consumed == 4

    def test_agreement_with_oracle_on_random_words(self, matcher_class, rng):
        from repro.regex.generators import random_deterministic_expression

        for _ in range(20):
            expr = random_deterministic_expression(rng, rng.randint(1, 8))
            tree = build_parse_tree(expr)
            oracle = LanguageOracle(tree)
            matcher = matcher_class(tree, verify=False)
            for _ in range(6):
                word = sample_member(expr, rng)
                assert matcher.accepts(word)
                other = mutate_word(word, list(tree.alphabet), rng)
                assert matcher.accepts(other) == oracle.accepts(other)

    def test_rejects_checker_for_another_tree(self, matcher_class):
        from repro.core.determinism import DeterminismChecker

        other = DeterminismChecker(build_parse_tree("xy"))
        with pytest.raises(ValueError):
            matcher_class("ab", checker=other)


class TestKOccurrenceSpecifics:
    def test_occurrence_bound_reported(self):
        matcher = KOccurrenceMatcher("(ab+b(b?)a)*")
        assert matcher.occurrence_bound == 3

    def test_subset_variant_handles_non_deterministic_expressions(self):
        matcher = SubsetKOccurrenceMatcher("(a*ba+bb)*")
        assert matcher.accepts(list("bb"))
        assert matcher.accepts(list("aba"))
        assert matcher.accepts(list("ababb"))
        assert not matcher.accepts(list("ab"))

    def test_subset_variant_agrees_with_oracle(self, rng):
        from repro.regex.generators import random_expression

        for _ in range(30):
            expr = random_expression(rng, rng.randint(1, 8))
            tree = build_parse_tree(expr)
            oracle = LanguageOracle(tree)
            matcher = SubsetKOccurrenceMatcher(tree)
            for _ in range(4):
                word = sample_member(expr, rng)
                assert matcher.accepts(word)
                other = mutate_word(word, list(tree.alphabet), rng)
                assert matcher.accepts(other) == oracle.accepts(other)


class TestPathDecompositionSpecifics:
    def test_top_of_figure_style_positions(self):
        matcher = PathDecompositionMatcher("(ab)c")
        for position in matcher.tree.positions[1:-1]:
            top = matcher.top(position)
            assert top is not None

    def test_h_is_collision_free_for_deterministic_expressions(self, rng):
        """Lemma 4.5: positions sharing their top node have distinct labels."""
        from repro.regex.generators import random_deterministic_expression

        for _ in range(30):
            tree = build_parse_tree(random_deterministic_expression(rng, rng.randint(1, 9)))
            matcher = PathDecompositionMatcher(tree, verify=False)
            seen = {}
            for position in tree.positions:
                head = matcher.top(position)
                if head is None:
                    continue
                key = (head.index, position.symbol)
                assert key not in seen, "h aggregation collision"
                seen[key] = position

    def test_nexttop_is_a_strict_ancestor(self):
        matcher = PathDecompositionMatcher("(a(b?c))*d")
        for node in matcher.tree.nodes:
            target = matcher.nexttop(node)
            if target is not None:
                assert target.is_strict_ancestor_of(node)

    def test_jump_count_is_bounded_by_alternation_depth(self, rng):
        """Lemma 4.9: amortised jumps per symbol are O(c_e)."""
        from repro.regex.properties import alternation_depth
        from repro.regex.words import member_stream

        expr = deep_alternation(6)
        tree = build_parse_tree(expr)
        matcher = PathDecompositionMatcher(tree, verify=False)
        depth = alternation_depth(tree)
        word = member_stream(expr, 50, rng)
        matcher.reset_jump_count()
        assert matcher.accepts(word)
        if word:
            assert matcher.jump_count / len(word) <= depth + 6

    def test_head_count_positive(self):
        matcher = PathDecompositionMatcher("(ab+c)*")
        assert matcher.head_count() >= 1


class TestStarFreeSpecifics:
    def test_requires_star_free_expression(self):
        with pytest.raises(ValueError):
            StarFreeMultiMatcher("(ab)*")

    def test_requires_deterministic_expression(self):
        with pytest.raises(NotDeterministicError):
            StarFreeMultiMatcher("a?a")

    def test_matches_many_words_in_one_pass(self, rng):
        expr = star_free_chain(6)
        tree = build_parse_tree(expr)
        oracle = LanguageOracle(tree)
        matcher = StarFreeMultiMatcher(tree, verify=False)
        words = [sample_member(expr, rng) for _ in range(30)]
        words += [mutate_word(w, list(tree.alphabet), rng) for w in words[:15]]
        words.append([])
        expected = [oracle.accepts(word) for word in words]
        assert matcher.match_all(words) == expected

    def test_empty_word_handling(self):
        matcher = StarFreeMultiMatcher("a?")
        assert matcher.match_all([[], ["a"], ["a", "a"]]) == [True, True, False]

    def test_examined_entries_stay_linear(self, rng):
        expr = star_free_chain(20)
        matcher = StarFreeMultiMatcher(expr, verify=False)
        words = [sample_member(expr, rng) for _ in range(50)]
        matcher.match_all(words)
        total_symbols = sum(len(word) for word in words) + len(words)
        assert matcher.examined_entries <= 3 * total_symbols

    def test_paper_example_4_11(self):
        """Example 4.11: e = (a+ba)(c?)(d?b) with words bcdb, acdba, acb, bada."""
        matcher = StarFreeMultiMatcher("((a+ba)(c?))((d?)b)")
        words = [list("bcdb"), list("acdba"), list("acb"), list("bada")]
        assert matcher.match_all(words) == [False, False, True, False]


class TestDispatch:
    def test_small_occurrence_bound_prefers_kore(self):
        assert select_strategy(build_parse_tree("(ab+b(b?)a)*")) == KOccurrenceMatcher.name

    def test_large_alphabet_repeated_symbols_prefers_path_decomposition(self):
        expr = bounded_occurrence(6, 3)
        assert select_strategy(build_parse_tree(expr)) == PathDecompositionMatcher.name

    def test_build_matcher_auto(self):
        matcher = build_matcher("(ab)*")
        assert matcher.accepts(list("abab"))

    def test_build_matcher_explicit_strategy(self):
        for name in STRATEGIES:
            matcher = build_matcher("(ab)*c", strategy=name)
            assert matcher.name == name
            assert matcher.accepts(list("ababc"))

    def test_build_matcher_unknown_strategy(self):
        with pytest.raises(ValueError):
            build_matcher("ab", strategy="quantum")

    def test_all_strategies_agree_on_mixed_content(self, rng):
        expr = mixed_content(10)
        tree = build_parse_tree(expr)
        oracle = LanguageOracle(tree)
        matchers = [build_matcher(tree, strategy=name, verify=False) for name in STRATEGIES]
        for _ in range(10):
            word = sample_member(expr, rng)
            garbled = mutate_word(word, list(tree.alphabet), rng)
            for target in (word, garbled):
                expected = oracle.accepts(target)
                for matcher in matchers:
                    assert matcher.accepts(target) == expected
