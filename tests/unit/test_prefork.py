"""The multi-process front: StatsBoard semantics and a real prefork boot.

The StatsBoard tests run in-process (the seqlock protocol must hold for
any interleaving a crashed or mid-write worker can leave behind).  The
boot test launches ``python -m repro.service --processes 2`` as a real
subprocess on an ephemeral port, exercises ``/match`` and the merged
``/stats`` cluster view, and shuts it down with SIGTERM.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.service.prefork import _SLOT_HEADER, SLOT_SIZE, StatsBoard

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


class TestStatsBoard:
    def test_publish_read_round_trip(self):
        board = StatsBoard(slots=3)
        payload = {"pid": 42, "requests": {"total": 7}}
        assert board.publish(1, payload) is True
        assert board.read(1) == payload
        assert board.read(0) is None  # untouched slot
        assert board.read_all() == {1: payload}

    def test_republish_overwrites(self):
        board = StatsBoard(slots=1)
        board.publish(0, {"n": 1})
        board.publish(0, {"n": 2})
        assert board.read(0) == {"n": 2}

    def test_oversized_payload_is_skipped_not_torn(self):
        board = StatsBoard(slots=1)
        board.publish(0, {"n": 1})
        huge = {"blob": "x" * SLOT_SIZE}
        assert board.publish(0, huge) is False
        assert board.read(0) == {"n": 1}  # previous value intact

    def test_torn_write_reads_as_stale(self):
        board = StatsBoard(slots=1)
        board.publish(0, {"n": 1})
        # Simulate a worker that died mid-write: odd seqlock counter.
        seq, length = _SLOT_HEADER.unpack_from(board._mm, 0)
        _SLOT_HEADER.pack_into(board._mm, 0, seq + 1, length)
        assert board.read(0) is None

    def test_garbage_length_reads_as_stale(self):
        board = StatsBoard(slots=1)
        _SLOT_HEADER.pack_into(board._mm, 0, 2, SLOT_SIZE * 2)
        assert board.read(0) is None

    def test_publish_recovers_from_a_crashed_writer(self):
        """A worker killed mid-write leaves an odd counter; the restarted
        worker's next publish must re-even it, not invert the parity."""
        board = StatsBoard(slots=1)
        board.publish(0, {"n": 1})
        seq, length = _SLOT_HEADER.unpack_from(board._mm, 0)
        _SLOT_HEADER.pack_into(board._mm, 0, seq + 1, length)  # died mid-write
        assert board.read(0) is None
        assert board.publish(0, {"n": 2}) is True
        assert board.read(0) == {"n": 2}
        assert board.read(0) == {"n": 2}  # stable, not flapping

    def test_slot_isolation(self):
        board = StatsBoard(slots=4)
        for slot in range(4):
            board.publish(slot, {"slot": slot})
        assert {slot: body["slot"] for slot, body in board.read_all().items()} == {
            0: 0, 1: 1, 2: 2, 3: 3
        }

    def test_header_struct_is_two_u32(self):
        assert _SLOT_HEADER.size == struct.calcsize("<II")


class TestClusterStatsView:
    def test_stats_payload_filters_stale_workers(self):
        """A dead worker's leftover summary must not count as live."""
        import socket

        from repro.service.core import ValidationService
        from repro.service.prefork import PreforkHTTPServer

        listen = socket.socket()
        listen.bind(("127.0.0.1", 0))
        listen.listen(1)
        board = StatsBoard(slots=2)
        fresh = {"pid": 1, "requests": {"total": 5, "errors": 0, "in_flight": 1}}
        board.publish(0, {**fresh, "updated_at": time.time()})
        dead = {"pid": 2, "requests": {"total": 9, "errors": 0, "in_flight": 3}}
        board.publish(1, {**dead, "updated_at": time.time() - 3600})
        service = ValidationService(workers=1)
        server = PreforkHTTPServer(listen, service, board, slot=0, processes=2)
        try:
            cluster = server.stats_payload()["cluster"]
            assert cluster["live_workers"] == 1
            assert cluster["aggregate_requests"] == {"total": 5, "errors": 0, "in_flight": 1}
            assert cluster["workers"]["0"]["stale"] is False
            assert cluster["workers"]["1"]["stale"] is True  # listed, excluded
        finally:
            server.server_close()
            service.close()


def _wait_for_port(process: subprocess.Popen, deadline_s: float = 30.0) -> int:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError("server exited before printing its address")
        if "listening on http://" in line:
            return int(line.split("http://")[1].split(" ")[0].rsplit(":", 1)[1])
    raise AssertionError("server never printed its address")


def _get(port: int, path: str) -> dict:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10) as response:
        return json.load(response)


def _post(port: int, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="prefork requires os.fork")
class TestPreforkBoot:
    def test_prefork_serves_and_merges_cluster_stats(self, tmp_path):
        # A snapshot to preload, so the boot exercises the whole pipeline.
        repro.purge()
        pattern = repro.compile("(ab+b(b?)a)*")
        for word in ["abba", "bb", "abab"]:
            pattern.match(word)
        snapshot_path = tmp_path / "rows.snapshot"
        repro.save_snapshot(str(snapshot_path))
        repro.purge()

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--port",
                "0",
                "--processes",
                "2",
                "--workers",
                "2",
                "--snapshot",
                str(snapshot_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            port = _wait_for_port(process)
            deadline = time.monotonic() + 30
            last_error = None
            while time.monotonic() < deadline:
                try:
                    body = _post(
                        port, "/match", {"pattern": "(ab+b(b?)a)*", "words": ["abba", "bb"]}
                    )
                    break
                except OSError as error:  # workers may still be forking
                    last_error = error
                    time.sleep(0.2)
            else:
                raise AssertionError(f"prefork server never answered: {last_error}")
            assert body["verdicts"] == [True, False]

            stats = _get(port, "/stats")
            cluster = stats["cluster"]
            assert cluster["processes"] == 2
            assert 1 <= cluster["live_workers"] <= 2
            assert stats["snapshot"]["patterns_loaded"] >= 1
            for payload in cluster["workers"].values():
                assert payload["pid"] > 0
            assert _get(port, "/healthz")["status"] == "ok"
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                exit_code = process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
                raise
            finally:
                process.stdout.close()
            assert exit_code == 0
