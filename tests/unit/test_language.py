"""Unit tests for the set-based First/Last/Follow oracle."""

import pytest

from repro.regex.language import LanguageOracle, first_positions, follow_positions, last_positions
from repro.regex.parse_tree import build_parse_tree


def labels(tree, indices):
    return sorted(tree.positions[i].symbol for i in indices)


class TestFirstLast:
    def test_first_of_concat(self):
        tree = build_parse_tree("ab")
        oracle = LanguageOracle(tree)
        assert labels(tree, oracle.first(tree.inner_root)) == ["a"]

    def test_first_of_nullable_prefix(self):
        tree = build_parse_tree("a?b")
        oracle = LanguageOracle(tree)
        assert labels(tree, oracle.first(tree.inner_root)) == ["a", "b"]

    def test_last_of_nullable_suffix(self):
        tree = build_parse_tree("ab?")
        oracle = LanguageOracle(tree)
        assert labels(tree, oracle.last(tree.inner_root)) == ["a", "b"]

    def test_first_of_union(self):
        tree = build_parse_tree("ab+cd")
        oracle = LanguageOracle(tree)
        assert labels(tree, oracle.first(tree.inner_root)) == ["a", "c"]

    def test_first_and_last_nonempty_for_every_node(self):
        tree = build_parse_tree("(c?((ab*)(a?c)))*(ba)")
        oracle = LanguageOracle(tree)
        for node in tree.nodes:
            assert oracle.first(node)
            assert oracle.last(node)

    def test_figure1_first_last_of_n2(self):
        """Figure 1: for e0's star factor, First(n2) = {p1, p2} (c and a) and
        Last(n2) = {p5} (the second c)."""
        tree = build_parse_tree("(c?((ab*)(a?c)))*(ba)")
        star_node = tree.inner_root.left
        body = star_node.left  # n2 in the figure
        oracle = LanguageOracle(tree)
        assert sorted(oracle.first(body)) == [1, 2]
        assert sorted(oracle.last(body)) == [5]

    def test_helper_functions(self):
        tree = build_parse_tree("ab")
        assert [p.symbol for p in first_positions(tree, tree.inner_root)] == ["a"]
        assert [p.symbol for p in last_positions(tree, tree.inner_root)] == ["b"]


class TestFollow:
    def test_example_2_1_follow_sets(self):
        """Example 2.1: in e1 = (ab+b(b?)a)*, Follow(p3) = {p4, p5}."""
        tree = build_parse_tree("(ab+b(b?)a)*")
        oracle = LanguageOracle(tree)
        p3 = tree.positions[3]
        assert sorted(oracle.follow(p3)) == [4, 5]

    def test_example_2_1_follow_sets_e2(self):
        """Example 2.1: in e2 = (a*ba+bb)*, Follow(q3) = {q1, q2, q4}
        (plus the end sentinel, since q3 is a last position of the wrapped tree)."""
        tree = build_parse_tree("(a*ba+bb)*")
        oracle = LanguageOracle(tree)
        q3 = tree.positions[3]
        inner = {q for q in oracle.follow(q3) if q != tree.end.position_index}
        assert sorted(inner) == [1, 2, 4]
        assert tree.end.position_index in oracle.follow(q3)

    def test_follow_through_star(self):
        tree = build_parse_tree("(ab)*")
        oracle = LanguageOracle(tree)
        b = tree.positions_by_symbol("b")[0]
        assert labels(tree, oracle.follow(b)) == ["$", "a"]

    def test_start_sentinel_follows_into_first(self):
        tree = build_parse_tree("a?b")
        oracle = LanguageOracle(tree)
        assert labels(tree, oracle.follow(tree.start)) == ["a", "b"]

    def test_end_follows_last_positions(self):
        tree = build_parse_tree("ab?")
        oracle = LanguageOracle(tree)
        a = tree.positions_by_symbol("a")[0]
        assert tree.end.position_index in oracle.follow(a)

    def test_follow_by_symbol_grouping(self):
        tree = build_parse_tree("(a*ba+bb)*")
        oracle = LanguageOracle(tree)
        grouped = oracle.follow_by_symbol(tree.positions[3])
        assert set(grouped) == {"a", "b", "$"}  # q3 is a last position, so $ follows too
        assert grouped["b"] == [2, 4]


class TestDeterminismDefinition:
    def test_e1_is_deterministic(self):
        assert LanguageOracle(build_parse_tree("(ab+b(b?)a)*")).is_deterministic()

    def test_e2_is_not_deterministic(self):
        oracle = LanguageOracle(build_parse_tree("(a*ba+bb)*"))
        assert not oracle.is_deterministic()
        conflict = oracle.first_conflict()
        assert conflict is not None
        p, q1, q2 = conflict
        assert q1 != q2
        assert oracle.follows(p, q1) and oracle.follows(p, q2)

    def test_ambiguous_ab_star_b(self):
        """The introduction's example: ab*b is ambiguous (two b's follow a)."""
        assert not LanguageOracle(build_parse_tree("ab*b")).is_deterministic()

    def test_mixed_content_is_deterministic(self):
        from repro.regex.generators import mixed_content

        assert LanguageOracle(build_parse_tree(mixed_content(12))).is_deterministic()


class TestMembership:
    @pytest.mark.parametrize(
        "text,word,expected",
        [
            ("(ab)*", "", True),
            ("(ab)*", "ab", True),
            ("(ab)*", "abab", True),
            ("(ab)*", "aba", False),
            ("(ab+b(b?)a)*", "abba", True),
            ("(ab+b(b?)a)*", "bba", True),
            ("(ab+b(b?)a)*", "bb", False),
            ("a?bc*", "bc", True),
            ("a?bc*", "abcc", True),
            ("a?bc*", "ac", False),
            ("ab*b", "ab", True),
            ("ab*b", "abbbb", True),
            ("ab*b", "a", False),
        ],
    )
    def test_accepts(self, text, word, expected):
        oracle = LanguageOracle(build_parse_tree(text))
        assert oracle.accepts(list(word)) is expected

    def test_unknown_symbol_rejected(self):
        oracle = LanguageOracle(build_parse_tree("ab"))
        assert not oracle.accepts(["a", "z"])

    def test_agreement_with_thompson_nfa(self, rng):
        from repro.automata.nfa import ThompsonNFA
        from repro.regex.generators import random_expression
        from repro.regex.words import mutate_word, sample_member

        for _ in range(50):
            expr = random_expression(rng, rng.randint(1, 8))
            tree = build_parse_tree(expr)
            oracle = LanguageOracle(tree)
            nfa = ThompsonNFA(expr)
            for _ in range(5):
                word = sample_member(expr, rng)
                assert oracle.accepts(word) and nfa.accepts(word)
                garbled = mutate_word(word, list(tree.alphabet), rng)
                assert oracle.accepts(garbled) == nfa.accepts(garbled)
