"""Unit tests for colors, witnesses, a-skeleta and BuildNext (Section 3.1)."""

from repro.core.follow import FollowIndex
from repro.core.skeleton import SkeletonIndex
from repro.regex.language import LanguageOracle
from repro.regex.parse_tree import NodeKind, build_parse_tree


def build(text):
    tree = build_parse_tree(text)
    return tree, SkeletonIndex(tree)


class TestColorsAndWitnesses:
    def test_every_non_start_position_is_a_witness_somewhere(self, rng):
        from repro.regex.generators import random_deterministic_expression

        for _ in range(20):
            tree = build_parse_tree(random_deterministic_expression(rng, rng.randint(1, 8)))
            skeletons = SkeletonIndex(tree)
            witnessed = {
                witness.position_index
                for by_symbol in skeletons.colors.values()
                for witness in by_symbol.values()
            }
            expected = {
                p.position_index for p in tree.positions if p.p_sup_first is not None
            }
            assert witnessed == expected

    def test_figure1_colors_of_n3(self):
        """Figure 1: node n3 (the concatenation (ab*)(a?c)) has colors a and c,
        with witnesses p4 (the second a) and p5 (the second c)."""
        tree, skeletons = build("(c?((ab*)(a?c)))*(ba)")
        # n3 is the concat node whose right child is (a?c).
        n3 = None
        for node in tree.nodes:
            if node.kind is NodeKind.CONCAT and node.right is not None:
                right_positions = [p.symbol for p in tree.subexpression_positions(node.right)]
                left_positions = [p.symbol for p in tree.subexpression_positions(node.left)]
                if right_positions == ["a", "c"] and left_positions == ["a", "b"]:
                    n3 = node
                    break
        assert n3 is not None
        colors = skeletons.colors[n3.index]
        assert set(colors) == {"a", "c"}
        assert colors["a"].position_index == 4
        assert colors["c"].position_index == 5

    def test_p1_violation_detected(self):
        tree, skeletons = build("(a+a)b")
        assert skeletons.diagnostics.p1_violations
        violation = skeletons.diagnostics.p1_violations[0]
        assert violation.symbol == "a"
        assert violation.first is not violation.second

    def test_no_p1_violation_for_deterministic_expression(self):
        _, skeletons = build("(ab+b(b?)a)*")
        assert not skeletons.diagnostics.p1_violations

    def test_colored_nodes_are_sorted_in_preorder(self):
        tree, skeletons = build("(ab)(ac)")
        nodes = skeletons.colored_nodes("a")
        assert [n.pre for n in nodes] == sorted(n.pre for n in nodes)


class TestSkeletonStructure:
    def test_skeleton_contains_all_symbol_positions(self):
        tree, skeletons = build("(c?((ab*)(a?c)))*(ba)")
        a_skeleton = skeletons.skeleton_for("a")
        assert {p.position_index for p in a_skeleton.positions()} == {2, 4, 7}

    def test_skeleton_nodes_are_connected_and_rooted(self):
        tree, skeletons = build("(c?((ab*)(a?c)))*(ba)")
        for skeleton in skeletons.skeletons.values():
            roots = [node for node in skeleton.nodes if node.parent is None]
            assert roots == [skeleton.root]
            for node in skeleton.nodes:
                if node.parent is not None:
                    assert node.parent.enode.is_strict_ancestor_of(node.enode)
                    assert node in (node.parent.left, node.parent.right)

    def test_skeleton_children_sides_match_parse_tree(self):
        tree, skeletons = build("(ab)(ca)")
        for skeleton in skeletons.skeletons.values():
            for node in skeleton.nodes:
                if node.left is not None:
                    assert node.enode.left.is_ancestor_of(node.left.enode)
                if node.right is not None:
                    assert node.enode.right is not None
                    assert node.enode.right.is_ancestor_of(node.right.enode)

    def test_total_skeleton_size_is_linear(self, rng):
        from repro.regex.generators import random_deterministic_expression

        for _ in range(15):
            tree = build_parse_tree(random_deterministic_expression(rng, rng.randint(2, 12)))
            skeletons = SkeletonIndex(tree)
            # Lemma 3.1: the collection of skeleta has size O(|e|); the constant
            # here is generous but finite.
            assert skeletons.total_skeleton_size() <= 6 * tree.size

    def test_missing_symbol_has_no_skeleton(self):
        _, skeletons = build("ab")
        assert skeletons.skeleton_for("z") is None


class TestFirstPosAndNext:
    def test_first_pos_matches_oracle_first_sets(self, rng):
        from repro.regex.generators import random_deterministic_expression

        for _ in range(25):
            tree = build_parse_tree(random_deterministic_expression(rng, rng.randint(1, 9)))
            skeletons = SkeletonIndex(tree)
            oracle = LanguageOracle(tree)
            for symbol, skeleton in skeletons.skeletons.items():
                for node in skeleton.nodes:
                    expected = [
                        q for q in oracle.first(node.enode)
                        if tree.positions[q].symbol == symbol
                    ]
                    if node.first_pos is None:
                        assert expected == []
                    else:
                        assert [node.first_pos.position_index] == expected

    def test_example_4_1_candidates(self):
        """Example 4.1: at node n3 of e0, Witness(n3,c)=p5, Next(n3,c)=p1 and
        FirstPos(n3,c) is undefined."""
        tree, skeletons = build("(c?((ab*)(a?c)))*(ba)")
        colored = [
            node for node in skeletons.colored_nodes("c")
            if skeletons.witness(node, "c") is not None
            and skeletons.witness(node, "c").position_index == 5
        ]
        assert len(colored) == 1
        n3 = colored[0]
        assert skeletons.witness(n3, "c").position_index == 5
        assert skeletons.next_position(n3, "c").position_index == 1
        assert skeletons.first_pos(n3, "c") is None

    def test_next_positions_are_outside_the_subtree(self, rng):
        from repro.regex.generators import random_deterministic_expression

        for _ in range(20):
            tree = build_parse_tree(random_deterministic_expression(rng, rng.randint(1, 9)))
            skeletons = SkeletonIndex(tree)
            for skeleton in skeletons.skeletons.values():
                for node in skeleton.nodes:
                    for position in node.next_positions:
                        assert not node.enode.is_ancestor_of(position)

    def test_next_agrees_with_follow_after_semantics(self, rng):
        """Next(n,a) holds a-labelled positions that follow some last position of n
        from outside n's subtree (the FollowAfter set of the paper)."""
        from repro.regex.generators import random_deterministic_expression

        follow_cache = {}
        for _ in range(20):
            tree = build_parse_tree(random_deterministic_expression(rng, rng.randint(1, 8)))
            skeletons = SkeletonIndex(tree)
            oracle = LanguageOracle(tree)
            index = FollowIndex(tree)
            for symbol, skeleton in skeletons.skeletons.items():
                for node in skeleton.nodes:
                    for target in node.next_positions:
                        assert target.symbol == symbol
                        lasts = [tree.positions[i] for i in oracle.last(node.enode)]
                        assert any(index.follows(p, target) for p in lasts)
        del follow_cache

    def test_diagnostics_flag_paper_e2(self):
        # The paper's non-deterministic example is already caught while the
        # skeleta are being built (its two b's share their pSupFirst node).
        _, skeletons = build("(a*ba+bb)*")
        assert not skeletons.diagnostics.clean
        assert skeletons.diagnostics.p1_violations

    def test_diagnostics_clean_for_deterministic_expressions(self, rng):
        from repro.regex.generators import random_deterministic_expression

        for _ in range(30):
            tree = build_parse_tree(random_deterministic_expression(rng, rng.randint(1, 8)))
            assert SkeletonIndex(tree).diagnostics.clean
