"""Route stability of the ExecutionPlan layer (``repro.matching.plan``).

Every surface obtains its engine through :data:`~repro.matching.plan.PLANNER`,
so the route a pattern class takes is a contract: ``describe()["batch_path"]``
must name the plan that actually executes, across pattern classes and
across both kernel backends (``REPRO_KERNEL=pure|native`` — the native
backend degrades to pure when the library is absent, but the *route*
never changes with the backend).

The matrix pins:

* which route each pattern class plans (star-free, counted ``Repeat``,
  XSD particles, lexer unions, uncompiled patterns, oversized machines);
* that ``describe()["batch_path"]`` reads the plan actually executed —
  verified against execution telemetry (which engines were built, where
  the batch words were booked) rather than a second copy of the
  selection logic.
"""

from __future__ import annotations

import pytest

import repro
from repro.lexer import Lexer
from repro.matching import kernel
from repro.matching.plan import PLANNER
from repro.xml.xsd import element_particle, sequence

WORDS = ["ab", "aba", "abb", "ba", "", "abab", "bba", "abba", "b", "a"] * 2

ROUTE_MATRIX = [
    # (label, expression builder, compiled, expected route)
    ("star-free", lambda: "ab(a+b)", True, "star-free-multi"),
    ("starred", lambda: "(ab+b(b?)a)*", True, "compiled-kernel"),
    ("uncompiled", lambda: "ab(a+b)", False, "per-word"),
    (
        "counted-repeat-bounded",
        lambda: sequence(element_particle("b", 1, 4)).to_regex(),
        True,
        "star-free-multi",
    ),
    (
        "counted-repeat-unbounded",
        lambda: sequence(element_particle("b", 1, None)).to_regex(),
        True,
        "compiled-kernel",
    ),
]


@pytest.fixture(params=["pure", "native"])
def forced_backend(request, monkeypatch):
    """Force each kernel backend; routes must be identical under both."""
    monkeypatch.setenv("REPRO_KERNEL", request.param)
    return request.param


class TestRouteMatrix:
    @pytest.mark.parametrize(
        ("label", "build", "compiled", "route"),
        ROUTE_MATRIX,
        ids=[row[0] for row in ROUTE_MATRIX],
    )
    def test_route_is_stable_and_reported(self, forced_backend, label, build, compiled, route):
        pattern = repro.Pattern(build(), compiled=compiled)
        assert pattern.plan.route == route
        assert pattern.describe()["batch_path"] == route
        # The route survives matching (plans are planned once, not per call).
        pattern.match_all(WORDS)
        assert pattern.describe()["batch_path"] == route

    def test_lexer_union_routes_through_the_kernel_plan(self, forced_backend):
        lexer = Lexer([("AB", "ab(ab)*"), ("C", "cc*")])
        assert lexer.pattern.plan.route == "compiled-kernel"
        assert lexer._plan is lexer.pattern.plan
        assert [t.tag for t in lexer.tokens("ababcc")] == ["AB", "C"]

    def test_oversized_machine_routes_to_runtime(self, forced_backend, monkeypatch):
        monkeypatch.setattr(kernel, "TABLE_LIMIT", 1)
        pattern = repro.Pattern("(ab+b(b?)a)*")
        assert pattern.plan.route == "compiled-runtime"
        assert pattern.describe()["batch_path"] == "compiled-runtime"
        assert pattern.match_all(["abba", "bb"]) == [True, False]


class TestRouteMatchesExecution:
    """``batch_path`` names the plan that actually ran, not a prediction."""

    def test_star_free_route_builds_the_multi_not_the_runtime(self, forced_backend):
        pattern = repro.Pattern("ab(a+b)")
        assert pattern.match_all(["aba", "abb", "ab", ""]) == [True, True, False, False]
        assert pattern.plan.built_star_free() is not None
        # The verdict batch ran on the multi-matcher alone: no lazy DFA.
        assert pattern._built_runtime() is None

    def test_kernel_route_books_batch_words_on_the_pattern(self, forced_backend):
        pattern = repro.Pattern("(ab+b(b?)a)*")
        verdicts = pattern.match_all(WORDS)
        assert len(verdicts) == len(WORDS)
        stats = pattern.stats()
        booked = stats["kernel_words"] + stats["kernel_fallback_words"]
        assert booked == len(WORDS)

    def test_runtime_route_books_nothing_on_the_kernel(self, forced_backend, monkeypatch):
        monkeypatch.setattr(kernel, "TABLE_LIMIT", 1)
        pattern = repro.Pattern("(ab+b(b?)a)*")
        pattern.match_all(WORDS)
        stats = pattern.stats()
        assert stats["kernel_words"] == 0
        assert stats["kernel_fallback_words"] == 0

    def test_per_word_route_never_builds_compiled_engines(self, forced_backend):
        pattern = repro.Pattern("ab(a+b)", compiled=False)
        assert pattern.match_all(["aba", "ba"]) == [True, False]
        assert pattern.plan.built_runtime() is None
        assert pattern.plan.built_star_free() is None


class TestPlannerRegistry:
    def test_registered_strategy_order(self):
        names = [name for name, _qualifies in PLANNER.strategies()]
        assert names == ["per-word", "star-free-multi", "compiled-kernel", "compiled-runtime"]

    def test_dialect_seam_accepts_and_removes_a_strategy(self):
        """The registry is the landing seam for future dialect engines."""
        built = []

        def qualifies(pattern, compiled):
            return compiled and pattern.expression is marker

        class _Probe:
            route = "probe-engine"

            def __init__(self, pattern):
                built.append(pattern)

        PLANNER.register("probe-engine", qualifies, _Probe, before="star-free-multi")
        try:
            marker = repro.Pattern("ab").expression
            probed = repro.Pattern(marker)
            assert probed.plan.route == "probe-engine"
            # Patterns the new strategy declines keep their old routes.
            assert repro.Pattern("ab(a+b)").plan.route == "star-free-multi"
        finally:
            PLANNER.unregister("probe-engine")
        assert built, "the registered builder was never used"
        assert repro.Pattern(marker).plan.route == "star-free-multi"
