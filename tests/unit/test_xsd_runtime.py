"""The XSD validator on the compiled engine: cache route, memoization, telemetry.

Companion to ``TestXSD`` in ``test_xml.py`` (which pins down particle
semantics): these tests pin down *how* validation executes — patterns come
from the module-level ``repro.compile`` cache, matchers are memoized per
declared element, child sequences replay warm lazy-DFA rows, and the
stats surfaces report real materialization.
"""

from __future__ import annotations

import pytest

import repro
from repro.errors import NotDeterministicError
from repro.xml import element
from repro.xml.xsd import XSDSchema, choice, element_particle, sequence


@pytest.fixture(autouse=True)
def _fresh_compile_cache():
    repro.purge()
    yield
    repro.purge()


def _declare(schema: XSDSchema) -> XSDSchema:
    schema.declare(
        "order",
        sequence(element_particle("item", 1, None), element_particle("note", 0, 1)),
    )
    schema.declare(
        "item",
        sequence(
            element_particle("sku"),
            element_particle("qty", 1, 3),
            choice(element_particle("description"), element_particle("summary"),
                   min_occurs=0, max_occurs=1),
        ),
    )
    return schema


def _order(qty_count: int = 2) -> "element":
    items = [
        element("item", element("sku"), *[element("qty") for _ in range(qty_count)])
    ]
    return element("order", *items, element("note"))


class TestMatcherMemoization:
    def test_matcher_for_returns_the_same_object_per_call(self):
        # Regression: _matcher_for must memoize per declared element, not
        # rebuild a Pattern (and its matcher) on every validation call.
        schema = _declare(XSDSchema())
        first = schema._matcher_for("item")
        assert first is not None
        assert schema._matcher_for("item") is first
        assert schema._matcher_for("undeclared") is None

    def test_validation_does_not_recompile(self):
        schema = _declare(XSDSchema())
        schema.validate_children("item", ["sku", "qty"])
        schema.validate_children("order", ["item"])
        compiles = repro.stats()["pattern_cache"]["misses"]
        for _ in range(5):
            schema.validate_children("item", ["sku", "qty", "qty"])
            schema.validate_children("order", ["item", "note"])
        assert repro.stats()["pattern_cache"]["misses"] == compiles

    def test_redeclaration_invalidates_the_memo(self):
        schema = _declare(XSDSchema())
        old = schema._matcher_for("item")
        assert schema.validate_children("item", ["sku", "qty"])
        schema.declare("item", sequence(element_particle("sku")))
        assert schema._matcher_for("item") is not old
        assert schema.validate_children("item", ["sku"])
        assert not schema.validate_children("item", ["sku", "qty"])


class TestCompileCacheRoute:
    def test_equal_particles_share_one_pattern_across_schemas(self):
        first = _declare(XSDSchema())
        second = _declare(XSDSchema())
        assert first._pattern_for("item") is second._pattern_for("item")
        assert repro.stats()["pattern_cache"]["hits"] >= 1

    def test_schema_and_runtime_rows_warm_across_documents(self):
        schema = _declare(XSDSchema())
        assert schema.validate_element(_order())
        warm = schema.stats()["totals"]["misses"]
        assert warm > 0
        assert schema.validate_element(_order())
        assert schema.validate_element(_order(qty_count=3))
        # qty{1,3} with 3 qty children exercised a transition the first
        # document never took, so misses may grow; replaying may not.
        replay = schema.stats()["totals"]["misses"]
        assert schema.validate_element(_order(qty_count=3))
        assert schema.stats()["totals"]["misses"] == replay

    def test_flipping_the_compiled_flag_mid_use_stays_correct(self):
        # Engines memoized under the old flag value must keep working:
        # dispatch follows what was cached, not the current flag.
        schema = _declare(XSDSchema(compiled=False))
        assert schema.validate_children("item", ["sku", "qty"])
        schema.compiled = True
        assert schema.validate_children("item", ["sku", "qty"])  # old direct engine
        assert not schema.validate_children("order", ["note"])  # new runtime engine
        schema.compiled = False
        assert schema.validate_children("order", ["item", "note"])

    def test_compiled_and_direct_schemas_agree(self):
        compiled = _declare(XSDSchema())
        direct = _declare(XSDSchema(compiled=False))
        cases = [
            ("item", ["sku", "qty"]),
            ("item", ["sku", "qty", "qty", "qty"]),
            ("item", ["sku", "qty", "qty", "qty", "qty"]),  # qty maxOccurs=3
            ("item", ["sku"]),  # qty minOccurs=1 violated
            ("item", ["sku", "qty", "summary"]),
            ("item", ["sku", "qty", "summary", "description"]),  # choice is 0..1
            ("order", ["item", "item", "note"]),
            ("order", ["note"]),
            ("order", []),
            ("undeclared", ["anything", "at", "all"]),
        ]
        for name, children in cases:
            assert compiled.validate_children(name, children) == direct.validate_children(
                name, children
            ), (name, children)
        # spot-check a few absolute verdicts so the equivalence is not vacuous
        assert compiled.validate_children("item", ["sku", "qty"])
        assert not compiled.validate_children("item", ["sku", "qty", "qty", "qty", "qty"])
        assert compiled.validate_children("undeclared", ["anything", "at", "all"])

    def test_upa_reports_come_from_cached_patterns(self):
        schema = _declare(XSDSchema())
        reports = schema.check_unique_particle_attribution()
        assert set(reports) == {"order", "item"}
        assert all(report.deterministic for report in reports.values())
        assert schema.is_valid_schema()
        # the UPA pass compiled both patterns; validation reuses them
        compiles = repro.stats()["pattern_cache"]["misses"]
        assert schema.validate_children("item", ["sku", "qty"])
        assert repro.stats()["pattern_cache"]["misses"] == compiles

    def test_upa_violation_reported_and_matching_refused(self):
        schema = XSDSchema()
        schema.declare(
            "bad",
            sequence(element_particle("a", 1, 2), element_particle("a", 1, 1)),
        )
        assert not schema.is_valid_schema()
        report = schema.check_unique_particle_attribution()["bad"]
        assert report.describe()
        with pytest.raises(NotDeterministicError):
            schema.validate_children("bad", ["a", "a"])


class TestSchemaTelemetry:
    def test_stats_empty_before_validation(self):
        schema = _declare(XSDSchema())
        assert schema.stats() == {"elements": {}, "totals": {}, "memos": {}}

    def test_stats_report_materialization_per_element(self):
        schema = _declare(XSDSchema())
        schema.validate_element(_order())
        stats = schema.stats()
        assert set(stats["elements"]) == {"order", "item"}
        for element_stats in stats["elements"].values():
            assert element_stats["transitions_memoized"] == element_stats["misses"] > 0
        totals = stats["totals"]
        assert totals["misses"] == sum(
            s["misses"] for s in stats["elements"].values()
        )
        assert {"dense_rows", "shared_rows"} <= set(totals)

    def test_totals_count_shared_runtimes_once(self):
        # Two names with structurally equal particles share one cached
        # Pattern (and runtime); totals must not double-count it.
        schema = XSDSchema()
        particle = sequence(element_particle("x", 1, None))
        schema.declare("a", particle)
        schema.declare("b", particle)
        assert schema.validate_children("a", ["x"])
        assert schema.validate_children("b", ["x", "x"])
        stats = schema.stats()
        assert set(stats["elements"]) == {"a", "b"}
        assert stats["elements"]["a"] == stats["elements"]["b"]  # same runtime
        assert stats["totals"]["misses"] == stats["elements"]["a"]["misses"]

    def test_direct_schema_reports_no_runtime_stats(self):
        schema = _declare(XSDSchema(compiled=False))
        schema.validate_element(_order())
        assert schema.stats()["elements"] == {}
