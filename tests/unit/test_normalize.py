"""Unit tests for AST normalisation (restrictions R2/R3, epsilon removal,
numeric expansion and the determinism-preserving ``E+ -> E E*`` rewriting)."""

import random

import pytest

from repro.regex.ast import (
    Concat,
    Epsilon,
    Optional,
    Plus,
    Repeat,
    Star,
    Sym,
    Union,
    concat,
    plus,
    star,
    sym,
)
from repro.regex.language import LanguageOracle
from repro.regex.normalize import normalize
from repro.regex.parse_tree import build_parse_tree
from repro.regex.words import enumerate_members


def same_language(left, right, max_length=6):
    """Compare languages by exhaustive enumeration up to a length bound."""
    left_words = {tuple(w) for w in enumerate_members(left, max_length)}
    right_words = {tuple(w) for w in enumerate_members(right, max_length)}
    return left_words == right_words


class TestR2R3:
    def test_nested_stars_collapse(self):
        assert normalize(Star(Star(Sym("a")))) == Star(Sym("a"))

    def test_star_of_optional_collapses(self):
        assert normalize(Star(Optional(Sym("a")))) == Star(Sym("a"))

    def test_star_of_plus_collapses(self):
        assert normalize(Star(Plus(Sym("a")))) == Star(Sym("a"))

    def test_optional_of_nullable_body_is_dropped(self):
        assert normalize(Optional(Star(Sym("a")))) == Star(Sym("a"))
        assert normalize(Optional(Optional(Sym("a")))) == Optional(Sym("a"))

    def test_optional_of_plus_becomes_star(self):
        assert normalize(Optional(Plus(Sym("a")))) == Star(Sym("a"))

    def test_optional_of_non_nullable_is_kept(self):
        assert normalize(Optional(Concat(Sym("a"), Sym("b")))) == Optional(
            Concat(Sym("a"), Sym("b"))
        )

    def test_result_satisfies_r2_r3(self):
        rng = random.Random(5)
        from repro.regex.generators import random_expression

        for _ in range(100):
            expr = normalize(random_expression(rng, rng.randint(1, 10)))
            for node in expr.iter_nodes():
                if isinstance(node, (Star, Plus)):
                    assert not isinstance(node.children()[0], (Star, Plus, Optional))
                if isinstance(node, Optional):
                    assert not node.children()[0].nullable()
                assert not isinstance(node, Epsilon) or expr == Epsilon()


class TestEpsilonRemoval:
    def test_concat_with_epsilon(self):
        assert normalize(Concat(Epsilon(), Sym("a"))) == Sym("a")
        assert normalize(Concat(Sym("a"), Epsilon())) == Sym("a")

    def test_union_with_epsilon_becomes_optional(self):
        assert normalize(Union(Epsilon(), Sym("a"))) == Optional(Sym("a"))
        assert normalize(Union(Sym("a"), Epsilon())) == Optional(Sym("a"))

    def test_union_of_epsilons(self):
        assert normalize(Union(Epsilon(), Epsilon())) == Epsilon()

    def test_star_of_epsilon(self):
        assert normalize(Star(Epsilon())) == Epsilon()


class TestPlusDesugaring:
    def test_plus_becomes_body_then_star(self):
        assert normalize(Plus(Sym("a"))) == Concat(Sym("a"), Star(Sym("a")))

    def test_plus_of_nullable_becomes_star(self):
        assert normalize(Plus(Optional(Sym("a")))) == Star(Sym("a"))

    def test_plus_preserves_language(self):
        expr = plus(concat(sym("a"), Optional(sym("b"))))
        assert same_language(expr, normalize(expr))

    def test_plus_preserves_determinism_on_samples(self):
        """The executable version of the argument in ``normalize._make_plus``:
        for non-nullable bodies, E+ and E·E* agree on determinism."""
        rng = random.Random(11)
        from repro.regex.generators import random_expression

        checked = 0
        for _ in range(200):
            body = random_expression(rng, rng.randint(1, 6))
            if body.nullable() or any(isinstance(node, Plus) for node in body.iter_nodes()):
                continue  # inner '+' nodes would test a different (nested) claim
            checked += 1
            as_plus = LanguageOracle(build_parse_tree_keep(Plus(body)))
            as_concat = LanguageOracle(build_parse_tree(Plus(body)))
            assert as_plus.is_deterministic() == as_concat.is_deterministic()
        assert checked > 30


def build_parse_tree_keep(expr):
    """Build a parse tree that keeps a native Plus node (bypassing the desugaring).

    Used only by the determinism-preservation test above: the set-based
    oracle handles native plus nodes correctly, which gives us the "true"
    determinism of E+ to compare against the desugared form.
    """
    from repro.regex import parse_tree as pt

    start = pt.TreeNode(pt.NodeKind.SYMBOL, "#")
    end = pt.TreeNode(pt.NodeKind.SYMBOL, "$")
    inner = _convert_keep(expr)
    left = pt._make_internal(pt.NodeKind.CONCAT, start, inner)
    root = pt._make_internal(pt.NodeKind.CONCAT, left, end)
    nodes, positions = pt._number(root)
    alphabet = pt.Alphabet(p.symbol for p in positions if p.symbol not in ("#", "$"))
    pt._annotate_nullable(nodes)
    pt._annotate_pointers(root, nodes)
    return pt.ParseTree(root, inner, nodes, positions, alphabet, expr)


def _convert_keep(expr):
    from repro.regex import parse_tree as pt

    if isinstance(expr, Sym):
        return pt.TreeNode(pt.NodeKind.SYMBOL, expr.symbol)
    if isinstance(expr, Concat):
        return pt._make_internal(
            pt.NodeKind.CONCAT, _convert_keep(expr.left), _convert_keep(expr.right)
        )
    if isinstance(expr, Union):
        return pt._make_internal(
            pt.NodeKind.UNION, _convert_keep(expr.left), _convert_keep(expr.right)
        )
    if isinstance(expr, Star):
        return pt._make_internal(pt.NodeKind.STAR, _convert_keep(expr.child), None)
    if isinstance(expr, Plus):
        return pt._make_internal(pt.NodeKind.PLUS, _convert_keep(expr.child), None)
    if isinstance(expr, Optional):
        return pt._make_internal(pt.NodeKind.OPTIONAL, _convert_keep(expr.child), None)
    raise AssertionError(f"unexpected node {expr!r}")


class TestNumericExpansion:
    @pytest.mark.parametrize(
        "low,high",
        [(0, 0), (0, 1), (1, 1), (1, 3), (2, 2), (2, 4), (0, 3), (0, None), (1, None), (3, None)],
    )
    def test_expansion_preserves_language(self, low, high):
        body = Concat(Sym("a"), Optional(Sym("b")))
        expr = Repeat(body, low, high)
        expanded = normalize(expr)
        assert same_language(expr, expanded, max_length=8)

    def test_expansion_can_be_disabled(self):
        expr = Repeat(Sym("a"), 2, 3)
        kept = normalize(expr, expand_numeric=False)
        assert isinstance(kept, Repeat)

    def test_expanding_zero_repetitions_gives_epsilon(self):
        assert normalize(Repeat(Sym("a"), 0, 0)) == Epsilon()

    def test_normalisation_is_idempotent(self):
        rng = random.Random(3)
        from repro.regex.generators import random_expression

        for _ in range(100):
            expr = normalize(random_expression(rng, rng.randint(1, 8)))
            assert normalize(expr) == expr
