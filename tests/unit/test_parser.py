"""Unit tests for the textual expression parser (both dialects)."""

import pytest

from repro.errors import RegexSyntaxError
from repro.regex.ast import Concat, Epsilon, Optional, Plus, Repeat, Star, Sym, Union
from repro.regex.parser import parse, parse_word


class TestPaperDialect:
    def test_single_symbol(self):
        assert parse("a") == Sym("a")

    def test_concatenation_by_juxtaposition(self):
        assert parse("ab") == Concat(Sym("a"), Sym("b"))

    def test_union_with_plus(self):
        assert parse("a+b") == Union(Sym("a"), Sym("b"))

    def test_union_with_bar(self):
        assert parse("a|b") == Union(Sym("a"), Sym("b"))

    def test_precedence_union_binds_weaker_than_concat(self):
        assert parse("ab+c") == Union(Concat(Sym("a"), Sym("b")), Sym("c"))

    def test_star_and_optional(self):
        assert parse("a*b?") == Concat(Star(Sym("a")), Optional(Sym("b")))

    def test_parentheses(self):
        assert parse("(a+b)c") == Concat(Union(Sym("a"), Sym("b")), Sym("c"))

    def test_paper_example_e1(self):
        expr = parse("(ab+b(b?)a)*")
        assert isinstance(expr, Star)
        assert expr.positions() == ["a", "b", "b", "b", "a"]

    def test_paper_example_e0(self):
        expr = parse("(c?((ab*)(a?c)))*(ba)")
        assert expr.positions() == ["c", "a", "b", "a", "c", "b", "a"]

    def test_numeric_repetition(self):
        assert parse("a{2,3}") == Repeat(Sym("a"), 2, 3)

    def test_numeric_repetition_exact(self):
        assert parse("a{4}") == Repeat(Sym("a"), 4, 4)

    def test_numeric_repetition_unbounded(self):
        assert parse("a{2,}") == Repeat(Sym("a"), 2, None)

    def test_numeric_repetition_multi_digit(self):
        assert parse("a{12,34}") == Repeat(Sym("a"), 12, 34)

    def test_empty_parentheses_are_epsilon(self):
        assert parse("()") == Epsilon()

    def test_whitespace_is_ignored(self):
        assert parse(" a  b ") == Concat(Sym("a"), Sym("b"))

    def test_explicit_dot_concatenation(self):
        assert parse("a.b") == Concat(Sym("a"), Sym("b"))

    def test_concat_folds_to_the_right(self):
        assert parse("abc") == Concat(Sym("a"), Concat(Sym("b"), Sym("c")))

    def test_union_folds_to_the_right(self):
        assert parse("a+b+c") == Union(Sym("a"), Union(Sym("b"), Sym("c")))


class TestNamedDialect:
    def test_identifiers_are_symbols(self):
        assert parse("title", dialect="named") == Sym("title")

    def test_concatenation_by_whitespace(self):
        assert parse("title author", dialect="named") == Concat(Sym("title"), Sym("author"))

    def test_postfix_plus_is_one_or_more(self):
        assert parse("author+", dialect="named") == Plus(Sym("author"))

    def test_union_uses_bar(self):
        assert parse("para | figure", dialect="named") == Union(Sym("para"), Sym("figure"))

    def test_names_may_contain_colons_and_dashes(self):
        assert parse("xs:element", dialect="named") == Sym("xs:element")
        assert parse("foo-bar", dialect="named") == Sym("foo-bar")
        # '.' is the explicit concatenation operator in both dialects.
        assert parse("foo.bar", dialect="named") == Concat(Sym("foo"), Sym("bar"))

    def test_full_content_model(self):
        expr = parse("title (author | editor)+ year?", dialect="named")
        assert expr.positions() == ["title", "author", "editor", "year"]

    def test_numeric_repetition(self):
        assert parse("item{2,5}", dialect="named") == Repeat(Sym("item"), 2, 5)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "(", "a+", "a)", "*a", "a{", "a{2", "a{2,", "a{x}", "(()", "a++b"],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(RegexSyntaxError):
            parse(text)

    def test_reserved_sentinels_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("a#b")
        with pytest.raises(RegexSyntaxError):
            parse("a$")

    def test_unknown_dialect(self):
        with pytest.raises(ValueError):
            parse("a", dialect="perl")

    def test_error_carries_position(self):
        with pytest.raises(RegexSyntaxError) as excinfo:
            parse("ab)")
        assert excinfo.value.position == 2


class TestParseWord:
    def test_plain_string_splits_into_characters(self):
        assert parse_word("abab") == ["a", "b", "a", "b"]

    def test_whitespace_separated_names(self):
        assert parse_word("title author author") == ["title", "author", "author"]

    def test_comma_separated_names(self):
        assert parse_word("title,author") == ["title", "author"]

    def test_sequence_passthrough(self):
        assert parse_word(["x", "y"]) == ["x", "y"]

    def test_empty_word(self):
        assert parse_word("") == []
        assert parse_word([]) == []
