"""Dense-row snapshots: format round-trip, corruption handling, telemetry.

The contract under test (ISSUE 4): a stale or corrupt snapshot must
degrade to the normal lazy fill with a counted ``snapshot_rejected``
stat — never an exception on the match path, and never a changed
verdict.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import cache
from repro.matching import CompiledRuntime, build_matcher
from repro.matching import snapshot as snapshot_format
from repro.matching.snapshot import SnapshotError
from repro.regex.parse_tree import build_parse_tree

EXPR = "(ab+b(b?)a)*"
WORDS = ["abba", "ab", "bb", "abab", "ba", "", "abbaab"]


@pytest.fixture(autouse=True)
def _fresh_caches():
    repro.purge()
    yield
    repro.purge()


def _warm_and_save(path) -> dict:
    pattern = repro.compile(EXPR)
    for word in WORDS:
        pattern.match(word)
    return repro.save_snapshot(str(path))


def _oracle() -> list[bool]:
    reference = repro.Pattern(EXPR, compiled=False)
    return [reference.match(word) for word in WORDS]


def _assert_degraded_but_correct(report: dict, expected_reason: str) -> None:
    """The load was rejected (with the right reason) and matching still works."""
    assert report["rejected"] >= 1, report
    assert report["patterns_loaded"] == 0, report
    stats = repro.stats()["snapshot"]
    assert stats["rejected_reasons"].get(expected_reason, 0) >= 1, stats
    pattern = repro.compile(EXPR)
    assert [pattern.match(word) for word in WORDS] == _oracle()
    runtime = pattern._built_runtime()
    assert runtime is None or runtime.stats()["adopted_rows"] == 0


class TestRoundTrip:
    def test_save_load_restores_rows_without_building_a_matcher(self, tmp_path):
        path = tmp_path / "rows.snapshot"
        saved = _warm_and_save(path)
        assert saved["patterns"] == 1 and saved["rows"] > 0
        repro.purge()
        report = repro.load_snapshot(str(path))
        assert report["patterns_loaded"] == 1
        assert report["rows_loaded"] == saved["rows"]
        pattern = repro.compile(EXPR)
        assert [pattern.match(word) for word in WORDS] == _oracle()
        runtime = pattern.runtime
        stats = runtime.stats()
        assert stats["adopted_rows"] == saved["rows"]
        assert stats["misses"] == 0, "adopted rows should answer every query"
        assert runtime._matcher_obj is None, "the Section-4 matcher must stay unbuilt"
        # Re-persisting a snapshot-adopted runtime (complete accepts, all
        # rows dense) must not force the matcher either — the refresh
        # path keeps the deferred-construction win.
        runtime.export_rows(complete=True)
        assert runtime._matcher_obj is None, "export of a complete runtime forced the matcher"

    def test_rows_are_interned_in_a_file_pool(self, tmp_path):
        path = tmp_path / "rows.snapshot"
        saved = _warm_and_save(path)
        assert saved["pool_rows"] <= saved["rows"]
        snapshot = snapshot_format.load(path)
        assert snapshot.pool_size == saved["pool_rows"]
        assert snapshot.entries[0].meta["expr"] == EXPR

    def test_loading_twice_is_idempotent(self, tmp_path):
        path = tmp_path / "rows.snapshot"
        saved = _warm_and_save(path)
        repro.purge()
        repro.load_snapshot(str(path))
        second = repro.load_snapshot(str(path))
        assert second["rows_loaded"] == 0, "locally present rows must win"
        pattern = repro.compile(EXPR)
        assert pattern.runtime.stats()["adopted_rows"] == saved["rows"]

    def test_save_skips_patterns_without_materialized_rows(self, tmp_path):
        repro.compile(EXPR)  # compiled but never matched: no runtime
        saved = repro.save_snapshot(str(tmp_path / "rows.snapshot"))
        assert saved["patterns"] == 0
        assert saved["skipped"] == 1

    def test_write_is_atomic_no_temp_residue(self, tmp_path):
        _warm_and_save(tmp_path / "rows.snapshot")
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "rows.snapshot"]
        assert leftovers == []


class TestCorruption:
    """Each corruption class maps to one counted rejection reason."""

    def _saved_bytes(self, tmp_path) -> tuple:
        path = tmp_path / "rows.snapshot"
        _warm_and_save(path)
        repro.purge()
        return path, path.read_bytes()

    def test_truncated_file(self, tmp_path):
        path, data = self._saved_bytes(tmp_path)
        for cut in (0, 7, len(data) // 2, len(data) - 1):
            path.write_bytes(data[:cut])
            report = repro.load_snapshot(str(path))
            _assert_degraded_but_correct(report, "truncated")
            repro.purge()

    def test_wrong_magic(self, tmp_path):
        path, data = self._saved_bytes(tmp_path)
        path.write_bytes(b"NOTASNAP" + data[8:])
        _assert_degraded_but_correct(repro.load_snapshot(str(path)), "magic")

    def test_wrong_version_byte(self, tmp_path):
        path, data = self._saved_bytes(tmp_path)
        mutated = bytearray(data)
        mutated[8] ^= 0xFF  # the version field sits right after the magic
        path.write_bytes(bytes(mutated))
        _assert_degraded_but_correct(repro.load_snapshot(str(path)), "version")

    def test_flipped_checksum(self, tmp_path):
        path, data = self._saved_bytes(tmp_path)
        mutated = bytearray(data)
        mutated[16] ^= 0x01  # the stored CRC-32
        path.write_bytes(bytes(mutated))
        _assert_degraded_but_correct(repro.load_snapshot(str(path)), "checksum")

    def test_flipped_payload_byte(self, tmp_path):
        path, data = self._saved_bytes(tmp_path)
        mutated = bytearray(data)
        mutated[-3] ^= 0x40  # payload corruption is caught by the same CRC
        path.write_bytes(bytes(mutated))
        _assert_degraded_but_correct(repro.load_snapshot(str(path)), "checksum")

    def test_missing_file(self, tmp_path):
        report = repro.load_snapshot(str(tmp_path / "never-written.snapshot"))
        assert report["rejected"] == 1
        assert repro.stats()["snapshot"]["rejected_reasons"].get("missing", 0) >= 1
        assert repro.compile(EXPR).match("abba")

    def test_alphabet_width_mismatch(self, tmp_path):
        """Well-formed file, valid fingerprint, rows of the wrong width."""
        pattern = repro.compile(EXPR)
        for word in WORDS:
            pattern.match(word)
        key = (EXPR, "paper", "auto", True)
        meta = cache.snapshot_meta(key, pattern)
        export = pattern.runtime.export_rows()
        bad_rows = {state: list(row) + [0] for state, row in export["rows"].items()}
        path = tmp_path / "rows.snapshot"
        snapshot_format.write(
            path,
            [
                {
                    "fingerprint": snapshot_format.pattern_fingerprint(meta),
                    "meta": meta,
                    "accepts": export["accepts"],
                    "rows": bad_rows,
                }
            ],
        )
        repro.purge()
        _assert_degraded_but_correct(repro.load_snapshot(str(path)), "alphabet-width")

    def test_stale_fingerprint(self, tmp_path):
        """An entry whose recorded identity does not match this build."""
        pattern = repro.compile(EXPR)
        for word in WORDS:
            pattern.match(word)
        key = (EXPR, "paper", "auto", True)
        meta = cache.snapshot_meta(key, pattern)
        export = pattern.runtime.export_rows()
        stale = dict(meta)
        stale["alphabet"] = meta["alphabet"] + ["zzz"]  # a different-build encoding
        path = tmp_path / "rows.snapshot"
        snapshot_format.write(
            path,
            [
                {
                    "fingerprint": snapshot_format.pattern_fingerprint(stale),
                    "meta": stale,
                    "accepts": export["accepts"],
                    "rows": export["rows"],
                }
            ],
        )
        repro.purge()
        _assert_degraded_but_correct(repro.load_snapshot(str(path)), "fingerprint")

    def test_rejections_are_counted(self, tmp_path):
        path, data = self._saved_bytes(tmp_path)
        before = repro.stats()["snapshot"]["snapshot_rejected"]
        mutated = bytearray(data)
        mutated[16] ^= 0x01
        path.write_bytes(bytes(mutated))
        repro.load_snapshot(str(path))
        repro.load_snapshot(str(path))
        assert repro.stats()["snapshot"]["snapshot_rejected"] == before + 2


class TestAdoptRows:
    """Direct runtime-level validation: reject before any mutation."""

    def _runtime(self) -> CompiledRuntime:
        return CompiledRuntime(build_matcher(build_parse_tree("(ab)*"), verify=False))

    def test_rejects_wrong_row_width(self):
        runtime = self._runtime()
        with pytest.raises(SnapshotError) as excinfo:
            runtime.adopt_rows(None, {0: [0]})
        assert excinfo.value.reason == "alphabet-width"
        assert runtime.stats()["adopted_rows"] == 0
        assert runtime.accepts("abab") is True

    def test_rejects_state_out_of_range(self):
        runtime = self._runtime()
        with pytest.raises(SnapshotError) as excinfo:
            runtime.adopt_rows(None, {999: [0, 1]})
        assert excinfo.value.reason == "row-bounds"

    def test_rejects_target_out_of_range(self):
        runtime = self._runtime()
        with pytest.raises(SnapshotError) as excinfo:
            runtime.adopt_rows(None, {0: [999, -7]})
        assert excinfo.value.reason == "row-bounds"

    def test_rejects_short_accepts_table(self):
        runtime = self._runtime()
        with pytest.raises(SnapshotError) as excinfo:
            runtime.adopt_rows(b"\x01", {})
        assert excinfo.value.reason == "accepts-length"

    def test_partial_validation_failure_mutates_nothing(self):
        runtime = self._runtime()
        good = runtime.export_rows()  # completes rows; export is adoptable
        fresh = CompiledRuntime(build_matcher(build_parse_tree("(ab)*"), verify=False))
        bad = dict(good["rows"])
        bad[0] = [999] * good["width"]
        with pytest.raises(SnapshotError):
            fresh.adopt_rows(good["accepts"], bad)
        assert fresh.stats()["adopted_rows"] == 0
        assert fresh.stats()["states_visited"] == 0


class TestServiceTelemetry:
    def test_service_stats_carry_snapshot_counters(self):
        from repro.service import ValidationService

        with ValidationService(workers=1) as service:
            stats = service.stats()
        assert "snapshot_rejected" in stats["snapshot"]
        assert stats["snapshot"] == repro.stats()["snapshot"]

    def test_snapshot_stats_shape(self):
        stats = repro.stats()["snapshot"]
        assert {
            "saves",
            "loads",
            "patterns_saved",
            "rows_saved",
            "patterns_loaded",
            "rows_loaded",
            "snapshot_rejected",
            "rejected_reasons",
        } <= set(stats)


class TestMetaRoundTrip:
    def test_ast_keyed_patterns_round_trip(self, tmp_path):
        """Content models are cached under AST keys; they must persist too."""
        from repro.regex.parser import parse

        expr = parse("(ab)*c", dialect="paper")
        pattern = repro.compile(expr)
        for word in ["ababc", "c", "ab"]:
            pattern.match(word)
        path = tmp_path / "rows.snapshot"
        saved = repro.save_snapshot(str(path))
        assert saved["patterns"] == 1
        repro.purge()
        report = repro.load_snapshot(str(path))
        assert report["patterns_loaded"] == 1
        restored = repro.compile(parse("(ab)*c", dialect="paper"))
        assert restored.runtime.stats()["adopted_rows"] > 0
        assert restored.match("ababc")

    def test_json_meta_is_human_readable(self, tmp_path):
        path = tmp_path / "rows.snapshot"
        _warm_and_save(path)
        snapshot = snapshot_format.load(path)
        meta = snapshot.entries[0].meta
        assert json.loads(json.dumps(meta)) == meta
        assert meta["positions"] == len(repro.compile(EXPR).tree.positions)
