"""Property tests for the diagnostics layer: witnesses replay, expectations are exact.

Two contracts from the PR-9 redesign, checked against the brute-force
:class:`~repro.regex.language.LanguageOracle` (subset simulation over the
position automaton — ground truth, never the code under test):

* **Witness soundness** — the recorded state trace of any diagnosis walks
  marked positions whose labels spell exactly the consumed input, and the
  verdict agrees with the oracle.  For deterministic expressions the run
  *is* the witness (Glushkov positions are the DFA states), so replaying
  it must reconstruct the word.

* **Expectation exactness** — at a failure, ``Diagnosis.expected`` (read
  off the Section-4 follow sets) equals the brute-force set of symbols
  that extend the consumed prefix into a viable word prefix, and
  ``can_end`` / ``last_accepting`` agree with oracle membership of the
  prefixes.  Both the compiled-runtime engine and the direct-matcher
  engine must say the same thing.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.api import Pattern
from repro.diagnostics import diagnose
from repro.regex.generators import random_deterministic_expression
from repro.regex.language import LanguageOracle
from repro.regex.parse_tree import build_parse_tree
from repro.regex.words import mutate_word, sample_member


def _workload(seed: int, leaf_count: int):
    """A deterministic expression plus member/near-member/random words."""
    rng = random.Random(seed)
    expr = random_deterministic_expression(rng, leaf_count)
    tree = build_parse_tree(expr)
    alphabet = tree.alphabet.as_list() or ["a"]
    words: list[list[str]] = [[]]
    for _ in range(5):
        member = sample_member(expr, rng)
        words.append(list(member))
        words.append(list(mutate_word(member, alphabet, rng)))
        words.append([rng.choice(alphabet) for _ in range(rng.randint(1, 8))])
    words.append([alphabet[0], "not-in-alphabet"])
    return expr, tree, alphabet, words


def _oracle_prefix_state(oracle: LanguageOracle, prefix):
    state = oracle.initial_state()
    for symbol in prefix:
        state = oracle.step(state, symbol)
    return state


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=2, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_success_witness_replays_word_and_verdict(seed: int, leaf_count: int):
    expr, tree, alphabet, words = _workload(seed, leaf_count)
    oracle = LanguageOracle(tree)
    for compiled in (True, False):
        pattern = Pattern(expr, compiled=compiled)
        for word in words:
            diag = diagnose(pattern, word)
            assert diag.matched == oracle.accepts(word), (compiled, word)
            if not diag.matched:
                continue
            # the trace walks one marked position per symbol, from the start
            # sentinel; its labels reconstruct the accepted word exactly
            nodes = diag.positions()
            assert nodes[0].position_index == tree.start.position_index
            assert [node.symbol for node in nodes[1:]] == list(word), (compiled, word)
            assert diag.error_index is None
            assert diag.expected == ()


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=2, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_failure_expectations_match_brute_force(seed: int, leaf_count: int):
    expr, tree, alphabet, words = _workload(seed, leaf_count)
    oracle = LanguageOracle(tree)
    for compiled in (True, False):
        pattern = Pattern(expr, compiled=compiled)
        for word in words:
            diag = diagnose(pattern, word)
            if diag.matched:
                continue
            index = diag.error_index
            assert index is not None and 0 <= index <= len(word), (compiled, word)
            prefix = list(word)[:index]
            # the failure witness still spells the consumed prefix
            assert [n.symbol for n in diag.positions()[1:]] == prefix, (compiled, word)
            state = _oracle_prefix_state(oracle, prefix)
            assert state, (compiled, word)  # the consumed prefix must be viable
            # expected-next is *exactly* the set of symbols extending the
            # viable prefix — no over- or under-approximation
            brute = tuple(
                sorted(symbol for symbol in alphabet if oracle.step(state, symbol))
            )
            assert diag.expected == brute, (compiled, word, diag.expected, brute)
            assert diag.can_end == oracle.is_accepting(state), (compiled, word)
            if index < len(word):
                failing = word[index]
                reason = "mismatch" if failing in alphabet else "unknown-symbol"
                assert diag.reason == reason, (compiled, word)
            else:
                assert diag.reason == "unexpected-end", (compiled, word)
            # last_accepting is the longest accepted prefix of the viable run
            accepted = [
                i for i in range(index + 1) if oracle.accepts(list(word)[:i])
            ]
            expected_last = accepted[-1] if accepted else -1
            assert diag.last_accepting == expected_last, (compiled, word)
