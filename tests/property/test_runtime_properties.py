"""Property tests: the compiled runtime agrees with every matching strategy.

The lazy-DFA runtime (:mod:`repro.matching.runtime`) may never change an
accept/reject verdict: for any deterministic expression, any registered
strategy and any word, ``CompiledRuntime(matcher)`` and the matcher itself
must answer identically — including through the streaming interface, and
including after the rows have been warmed by earlier words (cache reuse
must be invisible except in the miss counters).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.matching import STRATEGIES, CompiledRuntime, build_matcher, compile_runtime
from repro.regex.generators import random_deterministic_expression
from repro.regex.language import LanguageOracle
from repro.regex.parse_tree import build_parse_tree
from repro.regex.words import mutate_word, sample_member


def _workload(seed: int, leaf_count: int):
    """A deterministic expression plus member/near-member/random words."""
    rng = random.Random(seed)
    expr = random_deterministic_expression(rng, leaf_count)
    tree = build_parse_tree(expr)
    alphabet = tree.alphabet.as_list() or ["a"]
    words: list[list[str]] = [[]]
    for _ in range(6):
        member = sample_member(expr, rng)
        words.append(list(member))
        words.append(list(mutate_word(member, alphabet, rng)))
        words.append([rng.choice(alphabet) for _ in range(rng.randint(1, 8))])
    words.append([alphabet[0], "not-in-alphabet"])
    words.append(["$"])  # sentinel characters must die on every path
    words.append([alphabet[0], "#"])
    return tree, words


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=10))
@settings(max_examples=60, deadline=None)
def test_runtime_agrees_with_every_strategy(seed: int, leaf_count: int):
    tree, words = _workload(seed, leaf_count)
    oracle = LanguageOracle(tree)
    for strategy, matcher_class in STRATEGIES.items():
        matcher = matcher_class(tree, verify=False)
        runtime = CompiledRuntime(matcher)
        for word in words:
            expected = oracle.accepts(word)
            assert matcher.accepts(word) == expected, (strategy, word)
            assert runtime.accepts(word) == expected, (strategy, word)
        # batch path shares the now-warm rows and must not diverge
        assert runtime.match_many(words) == [oracle.accepts(word) for word in words]


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=8))
@settings(max_examples=40, deadline=None)
def test_runtime_streaming_equivalence(seed: int, leaf_count: int):
    tree, words = _workload(seed, leaf_count)
    matcher = build_matcher(tree, verify=False)
    runtime = compile_runtime(matcher)
    for word in words:
        direct = matcher.start()
        compiled = runtime.start()
        for symbol in word:
            assert compiled.feed(symbol) == direct.feed(symbol), (word, symbol)
            assert compiled.is_accepting() == direct.is_accepting(), (word, symbol)
        assert compiled.consumed == direct.consumed, word


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=10))
@settings(max_examples=60, deadline=None)
def test_dense_rows_preserve_verdicts(seed: int, leaf_count: int):
    """Densified (array-backed) rows may never change a verdict.

    Forcing the densify threshold to 1 promotes every visited state to a
    completed dense row on its first transition, so the whole corpus runs
    on the array path; verdicts must still match the direct matcher and
    the language oracle.
    """
    tree, words = _workload(seed, leaf_count)
    oracle = LanguageOracle(tree)
    matcher = build_matcher(tree, verify=False)
    eager = CompiledRuntime(build_matcher(tree, verify=False))
    eager._densify_at = 1  # densify every state on first fill
    for word in words:
        expected = oracle.accepts(word)
        assert matcher.accepts(word) == expected, word
        assert eager.accepts(word) == expected, word
    stats = eager.stats()
    assert stats["dense_rows"] == stats["states_visited"]  # all rows promoted
    assert stats["transitions_memoized"] == stats["misses"]
    # dense rows are total: replaying the corpus cannot miss again
    warm = eager.misses
    assert eager.match_many(words) == [oracle.accepts(word) for word in words]
    assert eager.misses == warm


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=8))
@settings(max_examples=40, deadline=None)
def test_dense_streaming_equivalence(seed: int, leaf_count: int):
    """The streaming run must agree symbol-by-symbol on dense rows too."""
    tree, words = _workload(seed, leaf_count)
    matcher = build_matcher(tree, verify=False)
    eager = CompiledRuntime(build_matcher(tree, verify=False))
    eager._densify_at = 1
    for word in words:
        direct = matcher.start()
        compiled = eager.start()
        for symbol in word:
            assert compiled.feed(symbol) == direct.feed(symbol), (word, symbol)
            assert compiled.is_accepting() == direct.is_accepting(), (word, symbol)
        assert compiled.consumed == direct.consumed, word


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=8))
@settings(max_examples=40, deadline=None)
def test_runtime_cache_reuse_is_pure(seed: int, leaf_count: int):
    """Replaying a corpus must not delegate to the matcher again."""
    tree, words = _workload(seed, leaf_count)
    runtime = CompiledRuntime(build_matcher(tree, verify=False))
    first = runtime.match_many(words)
    warm = runtime.misses
    assert runtime.match_many(words) == first
    assert runtime.misses == warm
    stats = runtime.stats()
    assert stats["transitions_memoized"] == stats["misses"] == warm
