"""Property tests: concurrency must be invisible in every verdict.

The compiled runtime's contract under threads (see
:mod:`repro.matching.runtime`) is that memoization, densification and
row sharing are pure caching — so any interleaving of worker threads,
including ones that densify rows while other threads are mid-word, must
produce exactly the verdicts of a single-threaded language oracle.  These
properties drive real threads through randomly generated deterministic
expressions; with the densify threshold forced to 1 every first visit of
a state promotes a dense row, maximising writer/reader interleavings.
"""

from __future__ import annotations

import random
import threading

from hypothesis import given, settings, strategies as st

from repro.matching import CompiledRuntime, build_matcher
from repro.regex.generators import random_deterministic_expression
from repro.regex.language import LanguageOracle
from repro.regex.parse_tree import build_parse_tree
from repro.regex.words import mutate_word, sample_member


def _workload(seed: int, leaf_count: int):
    """A deterministic expression plus member/near-member/random words."""
    rng = random.Random(seed)
    expr = random_deterministic_expression(rng, leaf_count)
    tree = build_parse_tree(expr)
    alphabet = tree.alphabet.as_list() or ["a"]
    words: list[list[str]] = [[]]
    for _ in range(6):
        member = sample_member(expr, rng)
        words.append(list(member))
        words.append(list(mutate_word(member, alphabet, rng)))
        words.append([rng.choice(alphabet) for _ in range(rng.randint(1, 8))])
    words.append([alphabet[0], "not-in-alphabet"])
    return tree, words


def _run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=2, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_interleaved_densification_never_changes_verdicts(
    seed: int, leaf_count: int, thread_count: int
):
    """Threads racing first-fills and densifications agree with the oracle.

    Every thread replays the corpus (rotated, so threads disagree about
    which states they touch first) three times on one shared runtime whose
    rows densify on first fill.  Any torn row, half-published array or
    double delegation would surface as a wrong verdict or as the
    ``transitions_memoized == misses`` invariant breaking.
    """
    tree, words = _workload(seed, leaf_count)
    oracle = LanguageOracle(tree)
    expected = [oracle.accepts(word) for word in words]
    runtime = CompiledRuntime(build_matcher(tree, verify=False))
    runtime._densify_at = 1  # densify every state on its first fill
    barrier = threading.Barrier(thread_count)
    failures: list[tuple] = []

    def make_worker(offset: int):
        rotated = words[offset:] + words[:offset]
        rotated_expected = expected[offset:] + expected[:offset]

        def worker():
            barrier.wait()  # maximise overlap of the first-fill storm
            for _ in range(3):
                verdicts = runtime.match_many(rotated)
                if verdicts != rotated_expected:
                    failures.append((offset, verdicts, rotated_expected))

        return worker

    _run_threads(make_worker(index % len(words)) for index in range(thread_count))
    assert not failures
    stats = runtime.stats()
    # One delegation per memoized transition even under contention: the
    # double-checked writer lock admits no duplicate fills.
    assert stats["transitions_memoized"] == stats["misses"]
    assert stats["dense_rows"] == stats["states_visited"]


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=2, max_value=8),
)
@settings(max_examples=20, deadline=None)
def test_concurrent_cold_runtime_matches_sequential_verdicts(seed: int, leaf_count: int):
    """A cold runtime hammered by 4 threads ends up verdict-identical.

    Unlike the densification property this keeps the production threshold,
    so dict rows and dense rows coexist while threads interleave; the
    final verdict set and the sequential-oracle verdict set must agree.
    """
    tree, words = _workload(seed, leaf_count)
    oracle = LanguageOracle(tree)
    expected = [oracle.accepts(word) for word in words]
    runtime = CompiledRuntime(build_matcher(tree, verify=False))
    barrier = threading.Barrier(4)
    failures: list[tuple] = []

    def worker():
        barrier.wait()
        verdicts = runtime.match_many(words)
        if verdicts != expected:
            failures.append(verdicts)

    _run_threads(worker for _ in range(4))
    assert not failures
    stats = runtime.stats()
    assert stats["transitions_memoized"] == stats["misses"]
