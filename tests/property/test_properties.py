"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

import repro
from repro.automata.glushkov import GlushkovAutomaton
from repro.core.determinism import check_deterministic
from repro.core.follow import FollowIndex
from repro.regex.ast import Concat, Optional, Plus, Regex, Repeat, Star, Sym, Union
from repro.regex.language import LanguageOracle
from repro.regex.parse_tree import build_parse_tree
from repro.regex.parser import parse
from repro.regex.printer import to_text
from repro.structures.lazy_array import LazyArray
from repro.structures.lca import LCAIndex
from repro.structures.rmq import SparseTableRMQ
from repro.structures.veb import VanEmdeBoasTree

# ---------------------------------------------------------------------------
# Expression strategies
# ---------------------------------------------------------------------------

_SYMBOLS = st.sampled_from("abcd")


def _expressions(max_leaves: int = 8, allow_plus: bool = True, allow_repeat: bool = False):
    """A hypothesis strategy producing random ASTs over a 4-letter alphabet."""
    leaves = st.builds(Sym, _SYMBOLS)

    def extend(children):
        unary = [
            children.map(Star),
            children.map(Optional),
        ]
        if allow_plus:
            unary.append(children.map(Plus))
        if allow_repeat:
            unary.append(
                st.builds(
                    Repeat,
                    children,
                    st.integers(min_value=0, max_value=2),
                    st.integers(min_value=2, max_value=3),
                )
            )
        binary = [
            st.builds(Concat, children, children),
            st.builds(Union, children, children),
        ]
        return st.one_of(*unary, *binary)

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def _words(max_size: int = 8):
    return st.lists(_SYMBOLS, max_size=max_size)


# ---------------------------------------------------------------------------
# Parser / printer round trips
# ---------------------------------------------------------------------------

@given(_expressions(allow_plus=False))
@settings(max_examples=150, deadline=None)
def test_paper_printer_round_trip(expr: Regex):
    assert parse(to_text(expr, dialect="paper")) == expr


@given(_expressions(allow_plus=True, allow_repeat=True))
@settings(max_examples=150, deadline=None)
def test_named_printer_round_trip(expr: Regex):
    assert parse(to_text(expr, dialect="named"), dialect="named") == expr


# ---------------------------------------------------------------------------
# Parse-tree invariants (R1-R3) and pointer consistency
# ---------------------------------------------------------------------------

@given(_expressions(allow_repeat=True))
@settings(max_examples=150, deadline=None)
def test_parse_tree_invariants(expr: Regex):
    tree = build_parse_tree(expr)
    assert tree.positions[0] is tree.start and tree.positions[-1] is tree.end
    for node in tree.nodes:
        # R2/R3 on the built tree: no nested iterations, no nullable optionals.
        if node.is_iteration and node.left is not None:
            assert not node.left.is_iteration
        if node.kind.value == "optional":
            assert not node.left.nullable
        # pointer sanity
        if node.p_sup_first is not None:
            assert node.p_sup_first.is_ancestor_of(node)
            assert node.p_sup_first.sup_first
        if node.p_sup_last is not None:
            assert node.p_sup_last.is_ancestor_of(node)
            assert node.p_sup_last.sup_last
        if node.p_star is not None:
            assert node.p_star.is_ancestor_of(node)
            assert node.p_star.is_iteration
        if node.parent is not None:
            assert node in node.parent.children()


@given(_expressions())
@settings(max_examples=100, deadline=None)
def test_follow_index_matches_oracle(expr: Regex):
    tree = build_parse_tree(expr)
    index = FollowIndex(tree)
    oracle = LanguageOracle(tree)
    for p in tree.positions:
        expected = oracle.follow(p)
        for q in tree.positions:
            assert index.follows(p, q) == (q.position_index in expected)


# ---------------------------------------------------------------------------
# Determinism: linear test == Glushkov baseline; matchers == oracle
# ---------------------------------------------------------------------------

@given(_expressions())
@settings(max_examples=200, deadline=None)
def test_linear_determinism_matches_glushkov(expr: Regex):
    tree = build_parse_tree(expr)
    assert check_deterministic(tree).deterministic == GlushkovAutomaton(tree).is_deterministic()


@given(_expressions(max_leaves=6, allow_plus=False), st.data())
@settings(max_examples=120, deadline=None)
def test_matchers_agree_with_oracle(expr: Regex, data):
    tree = build_parse_tree(expr)
    oracle = LanguageOracle(tree)
    if not oracle.is_deterministic():
        return
    from repro.matching import build_matcher

    matcher = build_matcher(tree, verify=False)
    word = data.draw(_words())
    assert matcher.accepts(word) == oracle.accepts(word)


@given(_expressions(max_leaves=6, allow_plus=True, allow_repeat=True), st.data())
@settings(max_examples=120, deadline=None)
def test_pattern_match_agrees_with_nfa(expr: Regex, data):
    from repro.automata.nfa import ThompsonNFA

    pattern = repro.compile(expr)
    if not pattern.is_deterministic:
        return
    nfa = ThompsonNFA(expr)
    word = data.draw(_words())
    assert pattern.match(word) == nfa.accepts(word)


# ---------------------------------------------------------------------------
# Data structures against simple reference models
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=60), st.data())
@settings(max_examples=150, deadline=None)
def test_rmq_matches_min(values, data):
    rmq = SparseTableRMQ(values)
    lo = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
    hi = data.draw(st.integers(min_value=lo + 1, max_value=len(values)))
    assert rmq.min(lo, hi) == min(values[lo:hi])


@given(
    st.lists(st.integers(min_value=0, max_value=127), max_size=60),
    st.integers(min_value=0, max_value=127),
)
@settings(max_examples=200, deadline=None)
def test_veb_predecessor_successor(values, probe):
    tree = VanEmdeBoasTree(128)
    for value in values:
        tree.insert(value)
    stored = set(values)
    assert tree.predecessor(probe) == max((v for v in stored if v <= probe), default=None)
    assert tree.successor(probe) == min((v for v in stored if v >= probe), default=None)
    assert sorted(tree) == sorted(stored)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["set", "get", "reset", "delete"]),
            st.integers(0, 15),
            st.integers(0, 99),
        ),
        max_size=80,
    )
)
@settings(max_examples=150, deadline=None)
def test_lazy_array_behaves_like_dict(operations):
    array = LazyArray(16)
    reference: dict[int, int] = {}
    for action, key, value in operations:
        if action == "set":
            array[key] = value
            reference[key] = value
        elif action == "get":
            assert array[key] == reference.get(key)
        elif action == "delete":
            array.delete(key)
            reference.pop(key, None)
        else:
            array.reset()
            reference.clear()
    assert dict(array.items()) == reference


@given(_expressions(), st.data())
@settings(max_examples=100, deadline=None)
def test_lca_index_matches_naive(expr: Regex, data):
    tree = build_parse_tree(expr)
    index = LCAIndex(tree.root, tree.nodes)
    a = data.draw(st.sampled_from(tree.nodes))
    b = data.draw(st.sampled_from(tree.nodes))
    assert index.lca(a, b) is tree.lca_naive(a, b)
