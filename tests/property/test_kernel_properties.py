"""Property tests: the batch kernel agrees with the compiled runtime.

The kernel (:mod:`repro.matching.kernel`) may never change an accept/reject
verdict: for any deterministic expression and any corpus — member words,
mutated near-members, random noise, words with out-of-alphabet symbols —
``match_words`` must agree with per-word ``accepts_encoded`` replay, at any
warmth level (cold all-fallback programs, mid-corpus densification, rows
adopted from a snapshot export) and through either scan backend.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

import pytest

from repro.matching import CompiledRuntime, build_matcher
from repro.matching import kernel
from repro.matching.kernel import VERDICT_FALLBACK, match_words
from repro.regex.generators import random_deterministic_expression
from repro.regex.parse_tree import build_parse_tree
from repro.regex.words import mutate_word, sample_member


def _workload(seed: int, leaf_count: int):
    """A deterministic expression plus a repeated-match style corpus."""
    rng = random.Random(seed)
    expr = random_deterministic_expression(rng, leaf_count)
    tree = build_parse_tree(expr)
    alphabet = tree.alphabet.as_list() or ["a"]
    pool: list[tuple[str, ...]] = [()]
    for _ in range(5):
        member = sample_member(expr, rng)
        pool.append(tuple(member))
        pool.append(tuple(mutate_word(member, alphabet, rng)))
        pool.append(tuple(rng.choice(alphabet) for _ in range(rng.randint(1, 8))))
    pool.append((alphabet[0], "not-in-alphabet"))
    pool.append(("$",))  # sentinel characters must die on every path
    pool.append((alphabet[0], "#"))
    # draw with replacement so the dedup fan-out is actually exercised
    words = [rng.choice(pool) for _ in range(40)]
    return tree, words


def _per_word(runtime: CompiledRuntime, words) -> list[bool]:
    return [runtime.accepts_encoded(runtime.encode(word)) for word in words]


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=10))
@settings(max_examples=60, deadline=None)
def test_kernel_agrees_cold_and_warm(seed: int, leaf_count: int):
    tree, words = _workload(seed, leaf_count)
    oracle_runtime = CompiledRuntime(build_matcher(tree, verify=False))
    expected = _per_word(oracle_runtime, words)

    runtime = CompiledRuntime(build_matcher(tree, verify=False))
    cold = match_words(runtime, words)
    assert cold is not None, "workload machines must fit a kernel table"
    assert cold[0] == expected, "cold kernel diverged"

    # The cold pass replayed (and thereby filled) every missed row; the
    # rebuilt program must answer the same corpus without any fallback.
    warm_verdicts, _, warm_fallback = match_words(runtime, words)
    assert warm_verdicts == expected, "warm kernel diverged"
    assert warm_fallback == 0


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=10))
@settings(max_examples=40, deadline=None)
def test_kernel_survives_mid_corpus_densification(seed: int, leaf_count: int):
    """Verdicts hold when rows densify (and the generation bumps) mid-run.

    Forcing the densify threshold to 1 promotes every visited state to a
    dense row on its first transition, so each fallback replay flips row
    representations under the cached program's feet; every subsequent
    ``match_words`` call must rebuild and still agree.
    """
    tree, words = _workload(seed, leaf_count)
    oracle_runtime = CompiledRuntime(build_matcher(tree, verify=False))
    expected = _per_word(oracle_runtime, words)

    runtime = CompiledRuntime(build_matcher(tree, verify=False))
    runtime._densify_at = 1
    for split in (5, len(words)):
        verdicts, _, _ = match_words(runtime, words[:split])
        assert verdicts == expected[:split], f"diverged after densify split {split}"


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=10))
@settings(max_examples=40, deadline=None)
def test_kernel_over_adopted_rows(seed: int, leaf_count: int):
    """Snapshot-adopted rows must scan exactly like locally filled ones."""
    tree, words = _workload(seed, leaf_count)
    donor = CompiledRuntime(build_matcher(tree, verify=False))
    expected = _per_word(donor, words)
    export = donor.export_rows(complete=True)

    def explode():
        raise AssertionError("adopted rows must answer without a matcher")

    adopter = CompiledRuntime(tree=tree, matcher_factory=explode)
    adopter.adopt_rows(export["accepts"], export["rows"])
    verdicts, _, fallback = match_words(adopter, words)
    assert verdicts == expected
    assert fallback == 0


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=10))
@settings(max_examples=40, deadline=None)
def test_pure_and_native_scans_are_byte_identical(seed: int, leaf_count: int):
    """Both backends walk the same buffers and must emit the same bytes."""
    if kernel.native_library() is None:
        pytest.skip("native kernel library not built")
    tree, words = _workload(seed, leaf_count)
    runtime = CompiledRuntime(build_matcher(tree, verify=False))
    _per_word(runtime, words[: len(words) // 2])  # half-warm: some rows miss
    program = runtime.export_kernel_program()
    corpus = program.encode_corpus(words)
    pure = program.scan(corpus, backend="pure")
    native = program.scan(corpus, backend="native")
    assert bytes(pure) == bytes(native)
    assert set(pure) <= {0, 1, VERDICT_FALLBACK}
