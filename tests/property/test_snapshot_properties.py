"""Property tests: persistence may never change a verdict.

Four laws, checked over random deterministic expressions and random
words (including unknown symbols and sentinels):

1. **round trip** — saving a warm runtime's rows and adopting them into
   a fresh runtime yields verdicts identical to the wrapped matcher, and
   the adopted runtime answers without a single delegation;
2. **export is stable** — export → adopt → export reproduces identical
   rows (the persisted machine is a fixpoint, not an approximation);
3. **corruption degrades, never lies** — any single-byte flip anywhere
   in a snapshot file either rejects cleanly (counted, lazy fill takes
   over) or leaves every verdict unchanged; it never raises on the match
   path and never changes an answer.  (Byte flips that survive CRC-32 in
   this file's small payloads do not exist, but the property is stated —
   and checked — end to end through ``load_snapshot``.)
4. **section independence** (format v2, ISSUE 5) — a random byte flip
   inside any *one* of the three sections (dense rows, star-free
   tables, validator memos) rejects only that section: the other two
   still adopt, and every verdict — matching and document validation —
   agrees with an uncompiled oracle.
"""

from __future__ import annotations

import os
import random
import tempfile

from hypothesis import given, settings, strategies as st

import repro
from repro.matching import CompiledRuntime, build_matcher
from repro.matching import snapshot as snapshot_format
from repro.regex.generators import random_deterministic_expression
from repro.regex.parse_tree import build_parse_tree
from repro.regex.words import mutate_word, sample_member
from repro.xml.dtd import parse_dtd
from repro.xml.parser import parse_document
from repro.xml.validator import DTDValidator


def _workload(seed: int, leaf_count: int):
    rng = random.Random(seed)
    expr = random_deterministic_expression(rng, leaf_count)
    tree = build_parse_tree(expr)
    alphabet = tree.alphabet.as_list() or ["a"]
    words: list[list[str]] = [[]]
    for _ in range(5):
        member = sample_member(expr, rng)
        words.append(list(member))
        words.append(list(mutate_word(member, alphabet, rng)))
        words.append([rng.choice(alphabet) for _ in range(rng.randint(1, 8))])
    words.append([alphabet[0], "not-in-alphabet"])
    words.append(["$", "#"])
    return expr, tree, words


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=10))
@settings(max_examples=40, deadline=None)
def test_adopted_rows_reproduce_every_verdict(seed: int, leaf_count: int):
    expr, tree, words = _workload(seed, leaf_count)
    matcher = build_matcher(tree, verify=False)
    warm = CompiledRuntime(matcher)
    expected = [warm.accepts(word) for word in words]

    export = warm.export_rows()
    fresh = CompiledRuntime(build_matcher(build_parse_tree(expr), verify=False))
    adopted = fresh.adopt_rows(export["accepts"], export["rows"])
    assert adopted == len(export["rows"])
    assert [fresh.accepts(word) for word in words] == expected
    assert fresh.stats()["misses"] == 0, "complete export must answer everything"

    # the persisted machine is a fixpoint: re-export reproduces the rows
    second = fresh.export_rows(complete=False)
    assert {state: list(row) for state, row in second["rows"].items()} == {
        state: list(row) for state, row in export["rows"].items()
    }
    assert second["accepts"] == export["accepts"]


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=2, max_value=8),
    st.data(),
)
@settings(max_examples=25, deadline=None)
def test_single_byte_corruption_never_changes_a_verdict(seed: int, leaf_count: int, data):
    expr, _tree, words = _workload(seed, leaf_count)
    try:
        repro.purge()
        pattern = repro.compile(expr)  # AST-keyed, like the XML validators
        expected = [pattern.match(word) for word in words]

        directory = tempfile.mkdtemp(prefix="snapshot-prop-")
        path = os.path.join(directory, "rows.snapshot")
        saved = repro.save_snapshot(path)
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())

        offset = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[offset] ^= 1 << bit
        with open(path, "wb") as handle:
            handle.write(bytes(blob))

        repro.purge()
        before = repro.stats()["snapshot"]["snapshot_rejected"]
        report = repro.load_snapshot(path)  # must not raise, whatever the flip hit
        if report["rejected"]:
            assert repro.stats()["snapshot"]["snapshot_rejected"] > before
        pattern = repro.compile(expr)
        assert [pattern.match(word) for word in words] == expected, (
            f"verdict changed after flipping bit {bit} of byte {offset} "
            f"(saved {saved['bytes']} bytes, load report {report})"
        )
    finally:
        repro.purge()


# ---------------------------------------------------------------------------
# Section independence (format v2)
# ---------------------------------------------------------------------------

_ROWS_EXPR = "(ab+b(b?)a)*"
_ROWS_WORDS = ["abba", "ab", "bb", "abab", "", "ba"]
_STAR_FREE_EXPR = "(a+b)(c?)d"
_STAR_FREE_WORDS = ["acd", "bd", "dd", "", "ad", "bcd"]
_DTD_TEXT = "<!ELEMENT a (b, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>"
_DOCUMENTS = ["<a><b/></a>", "<a><b/><c/></a>", "<a><c/></a>", "<a><c/><b/></a>"]


def _warm_all_sections() -> None:
    pattern = repro.compile(_ROWS_EXPR)
    for word in _ROWS_WORDS:
        pattern.match(word)
    repro.compile(_STAR_FREE_EXPR).match_all(_STAR_FREE_WORDS)
    validator = DTDValidator(parse_dtd(_DTD_TEXT))
    for text in _DOCUMENTS:
        validator.is_valid(parse_document(text))


def _oracle_verdicts() -> dict:
    rows = repro.Pattern(_ROWS_EXPR, compiled=False)
    star_free = repro.Pattern(_STAR_FREE_EXPR, compiled=False)
    validator = DTDValidator(parse_dtd(_DTD_TEXT), compiled=False)
    return {
        "rows": [rows.match(word) for word in _ROWS_WORDS],
        "star_free": [star_free.match(word) for word in _STAR_FREE_WORDS],
        "documents": [validator.is_valid(parse_document(text)) for text in _DOCUMENTS],
    }


def _live_verdicts() -> dict:
    validator = DTDValidator(parse_dtd(_DTD_TEXT))
    return {
        "rows": [repro.compile(_ROWS_EXPR).match(word) for word in _ROWS_WORDS],
        "star_free": repro.compile(_STAR_FREE_EXPR).match_all(_STAR_FREE_WORDS),
        "documents": [validator.is_valid(parse_document(text)) for text in _DOCUMENTS],
    }


@given(
    tag=st.sampled_from(["ROWS", "SFTB", "MEMO"]),
    data=st.data(),
)
@settings(max_examples=24, deadline=None)
def test_section_byte_flips_leave_other_sections_adopting(tag: str, data):
    try:
        repro.purge()
        _warm_all_sections()
        expected = _oracle_verdicts()
        directory = tempfile.mkdtemp(prefix="snapshot-v2-prop-")
        path = os.path.join(directory, "state.snapshot")
        repro.save_snapshot(path)

        description = snapshot_format.describe_file(path)
        assert [s["tag"] for s in description["sections"]] == ["ROWS", "SFTB", "MEMO"]
        section = next(s for s in description["sections"] if s["tag"] == tag)
        offset = section["offset"] + data.draw(
            st.integers(min_value=0, max_value=section["length"] - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        blob[offset] ^= 1 << bit
        with open(path, "wb") as handle:
            handle.write(bytes(blob))

        repro.purge()
        report = repro.load_snapshot(path)  # must not raise, whatever the flip hit
        # CRC-32 catches every single-bit flip, so exactly the targeted
        # section is rejected and the other two still adopt.
        assert report["rejected"] >= 1, report
        if tag != "ROWS":
            assert report["patterns_loaded"] >= 2, report
        if tag != "SFTB":
            assert report["tables_loaded"] == 1, report
        if tag != "MEMO":
            assert report["memos_loaded"] >= 1, report
        assert _live_verdicts() == expected, (
            f"verdict changed after flipping bit {bit} of byte {offset} in section {tag} "
            f"(load report {report})"
        )
    finally:
        repro.purge()
