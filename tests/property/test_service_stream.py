"""Property test: the aio streaming front agrees with the threaded front.

The streaming path reshapes everything — NDJSON lines instead of one JSON
body, micro-batches through a bounded queue instead of one pool map,
chunked framing both directions — and none of it may show in a verdict.
For random deterministic expressions and random corpora, the byte content
of the streamed verdict lines must decode to exactly the list the
threaded front returns for the same corpus.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading

from hypothesis import given, settings, strategies as st

from repro.regex.generators import random_deterministic_expression
from repro.regex.printer import to_text
from repro.regex.words import mutate_word, sample_member
from repro.service.core import ValidationService
from repro.service.http import ServiceHTTPServer
from repro.service.aio import AsyncServiceServer

import pytest
import urllib.request


@pytest.fixture(scope="module")
def fronts():
    """One threaded front and one aio front over separate services."""
    threaded_service = ValidationService(workers=4)
    threaded = ServiceHTTPServer(("127.0.0.1", 0), threaded_service)
    thread = threading.Thread(target=threaded.serve_forever, daemon=True)
    thread.start()

    loop = asyncio.new_event_loop()
    aio_service = ValidationService(workers=4)
    front = AsyncServiceServer(aio_service)
    ready = threading.Event()
    stopping: list[asyncio.Event] = []

    async def boot():
        stop = asyncio.Event()
        stopping.append(stop)
        await front.start("127.0.0.1", 0)
        ready.set()
        await stop.wait()
        await front.close()

    runner = threading.Thread(target=lambda: loop.run_until_complete(boot()), daemon=True)
    runner.start()
    ready.wait(timeout=10)
    try:
        yield threaded.server_address[1], front.address()[1]
    finally:
        threaded.shutdown()
        loop.call_soon_threadsafe(stopping[0].set)
        runner.join(timeout=10)
        loop.close()
        threaded_service.close()
        aio_service.close()


def _threaded_verdicts(port: int, pattern: str, words: list[str]):
    body = json.dumps({"pattern": pattern, "words": words, "dialect": "named"}).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/match",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())["verdicts"]


def _streamed_verdict_lines(port: int, pattern: str, words: list[str]) -> list[bytes]:
    """POST an NDJSON stream over a raw socket; return the verdict lines."""
    import socket

    header = json.dumps({"pattern": pattern, "dialect": "named"})
    lines = [header] + [json.dumps(word) for word in words]
    body = ("\n".join(lines) + "\n").encode()
    head = (
        f"POST /match HTTP/1.1\r\nHost: t\r\nContent-Type: application/x-ndjson\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode()
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(head + body)
        raw = bytearray()
        while True:
            piece = sock.recv(65536)
            if not piece:
                break
            raw += piece
    head_end = raw.index(b"\r\n\r\n")
    status = int(raw[:head_end].split(b" ", 2)[1])
    assert status == 200, raw[:head_end]
    # De-chunk the body.
    payload = bytearray()
    cursor = head_end + 4
    while True:
        size_end = raw.index(b"\r\n", cursor)
        size = int(raw[cursor:size_end], 16)
        if size == 0:
            break
        payload += raw[size_end + 2 : size_end + 2 + size]
        cursor = size_end + 2 + size + 2
    body_lines = bytes(payload).splitlines()
    trailer = json.loads(body_lines[-1])
    assert trailer == {"count": len(words), "done": True}
    return body_lines[1:-1]


def _corpus(seed: int, leaf_count: int) -> tuple[str, list[str]]:
    rng = random.Random(seed)
    expr = random_deterministic_expression(rng, leaf_count)
    pattern = to_text(expr, dialect="named")
    alphabet = sorted({symbol for symbol in pattern if symbol.isalnum()}) or ["a"]
    words: list[str] = [""]
    for _ in range(8):
        member = sample_member(expr, rng)
        words.append("".join(member))
        words.append("".join(mutate_word(member, alphabet, rng)))
        words.append("".join(rng.choice(alphabet) for _ in range(rng.randint(0, 9))))
    return pattern, words


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=2, max_value=9),
)
@settings(max_examples=20, deadline=None)
def test_streamed_verdicts_match_the_threaded_front(fronts, seed, leaf_count):
    threaded_port, aio_port = fronts
    pattern, words = _corpus(seed, leaf_count)
    expected = _threaded_verdicts(threaded_port, pattern, words)
    lines = _streamed_verdict_lines(aio_port, pattern, words)
    # Byte-identical framing: each verdict is exactly the canonical JSON
    # encoding of the threaded front's verdict, one per line, in order.
    assert lines == [json.dumps(verdict).encode() for verdict in expected]
