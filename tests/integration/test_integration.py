"""Integration tests: whole-pipeline scenarios spanning several subsystems."""

import random

import pytest

import repro
from repro.core.determinism import check_deterministic
from repro.core.xpath_check import xpath_determinism_check
from repro.matching import STRATEGIES, build_matcher
from repro.regex.generators import (
    bounded_occurrence,
    deep_alternation,
    dtd_corpus,
    mixed_content,
    random_deterministic_expression,
    star_free_chain,
)
from repro.regex.language import LanguageOracle
from repro.regex.parse_tree import build_parse_tree
from repro.regex.words import member_stream, mutate_word, sample_member
from repro.xml import DTD, DTDValidator, StreamingContentChecker, element, parse_dtd, parse_xml


class TestThreeWayDeterminismAgreement:
    """Oracle, linear test and the Theorem 3.6 characterisation must agree."""

    def test_on_random_expressions(self, rng):
        from repro.regex.generators import random_expression

        for _ in range(200):
            expr = random_expression(rng, rng.randint(1, 10))
            tree = build_parse_tree(expr)
            oracle_verdict = LanguageOracle(tree).is_deterministic()
            linear_verdict = check_deterministic(tree).deterministic
            xpath_verdict = xpath_determinism_check(tree).deterministic
            assert oracle_verdict == linear_verdict == xpath_verdict, str(expr)


class TestAllMatchersOnAllFamilies:
    FAMILIES = {
        "mixed-content": mixed_content(12),
        "deep-alternation": deep_alternation(5),
        "bounded-occurrence": bounded_occurrence(3, 3),
        "star-free": star_free_chain(8),
    }

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_family_against_oracle(self, family, strategy, rng):
        expr = self.FAMILIES[family]
        tree = build_parse_tree(expr)
        oracle = LanguageOracle(tree)
        matcher = build_matcher(tree, strategy=strategy, verify=False)
        for _ in range(15):
            word = sample_member(expr, rng)
            assert matcher.accepts(word)
            garbled = mutate_word(word, list(tree.alphabet), rng)
            assert matcher.accepts(garbled) == oracle.accepts(garbled)

    def test_long_streams(self, rng):
        expr = bounded_occurrence(2, 4)
        tree = build_parse_tree(expr)
        oracle = LanguageOracle(tree)
        word = member_stream(expr, 2000, rng)
        for strategy in STRATEGIES:
            assert build_matcher(tree, strategy=strategy, verify=False).accepts(word)
        assert oracle.accepts(word)


class TestEndToEndValidation:
    DTD_TEXT = """
    <!ELEMENT catalog (product+)>
    <!ELEMENT product (name, price, (description | summary)?, tag*)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
    <!ELEMENT description (#PCDATA)>
    <!ELEMENT summary (#PCDATA)>
    <!ELEMENT tag (#PCDATA)>
    """

    def _random_product(self, rng):
        children = [element("name", text="n"), element("price", text="1")]
        if rng.random() < 0.5:
            children.append(element(rng.choice(["description", "summary"]), text="d"))
        children.extend(element("tag", text="t") for _ in range(rng.randint(0, 3)))
        return element("product", *children)

    def test_generated_catalog_validates(self, rng):
        dtd = parse_dtd(self.DTD_TEXT)
        validator = DTDValidator(dtd)
        catalog = element("catalog", *[self._random_product(rng) for _ in range(50)])
        assert validator.is_valid(catalog)

    def test_corrupted_catalog_is_rejected_and_located(self, rng):
        dtd = parse_dtd(self.DTD_TEXT)
        validator = DTDValidator(dtd)
        catalog = element("catalog", *[self._random_product(rng) for _ in range(20)])
        # corrupt one product: price before name
        victim = catalog.children[7]
        victim.children[0], victim.children[1] = victim.children[1], victim.children[0]
        violations = validator.validate(catalog)
        assert len(violations) == 1
        assert violations[0].element is victim

    def test_xml_text_to_validation_round_trip(self):
        dtd = parse_dtd(self.DTD_TEXT)
        validator = DTDValidator(dtd)
        parsed = parse_xml(
            "<catalog><product><name>x</name><price>1</price>"
            "<summary>s</summary><tag>t</tag></product></catalog>"
        )
        assert validator.is_valid(parsed.document)

    def test_doctype_internal_subset_drives_validation(self):
        text = (
            "<!DOCTYPE note [\n"
            "<!ELEMENT note (to, from, body)>\n"
            "<!ELEMENT to (#PCDATA)><!ELEMENT from (#PCDATA)><!ELEMENT body (#PCDATA)>\n"
            "]>\n"
            "<note><to>a</to><from>b</from><body>c</body></note>"
        )
        parsed = parse_xml(text)
        dtd = parse_dtd(parsed.internal_subset, root=parsed.doctype_name)
        validator = DTDValidator(dtd)
        assert validator.is_valid(parsed.document)

    def test_dtd_like_corpus_end_to_end(self, rng):
        """Generated DTD-like content models: every deterministic model must be
        accepted by the validator machinery and match its own sampled words."""
        accepted = 0
        for index, expr in enumerate(dtd_corpus(rng, 60)):
            dtd = DTD()
            dtd.declare("root", expr)
            pattern = repro.compile(expr)
            if not pattern.is_deterministic:
                continue
            accepted += 1
            validator = DTDValidator(dtd)
            word = sample_member(expr, rng)
            doc = element("root", *[element(symbol) for symbol in word])
            assert validator.is_valid(doc)
        assert accepted >= 40  # most DTD-like models are deterministic


class TestStreamingScenario:
    def test_streaming_child_checker_matches_batch_answer(self, rng):
        expr = random_deterministic_expression(rng, 8)
        tree = build_parse_tree(expr)
        oracle = LanguageOracle(tree)
        matcher = build_matcher(tree, verify=False)
        for _ in range(30):
            word = mutate_word(sample_member(expr, rng), list(tree.alphabet), rng)
            checker = StreamingContentChecker(matcher)
            alive = True
            for symbol in word:
                if not checker.feed(symbol):
                    alive = False
                    break
            streamed = alive and checker.complete()
            assert streamed == oracle.accepts(word)
