"""Reproduction of Figure 1 and the worked examples around it (experiment F1).

Figure 1 shows the expression ``e0 = (c?((ab*)(a?c)))*(ba)``, its a-skeleton,
the colors of node n3 and the SupFirst/SupLast flags, and Example 4.1 walks
through two transition simulations on it.  These tests pin that exact
structure so the reproduction stays aligned with the paper.
"""

from repro.core.determinism import check_deterministic
from repro.core.follow import FollowIndex
from repro.core.skeleton import SkeletonIndex
from repro.matching import (
    ClimbingMatcher,
    KOccurrenceMatcher,
    LowestColoredAncestorMatcher,
    PathDecompositionMatcher,
)
from repro.regex.language import LanguageOracle
from repro.regex.parse_tree import NodeKind, build_parse_tree

E0 = "(c?((ab*)(a?c)))*(ba)"


def _tree():
    return build_parse_tree(E0)


def _n3(tree):
    """The node called n3 in Figure 1: the concatenation (ab*)(a?c)."""
    for node in tree.nodes:
        if node.kind is NodeKind.CONCAT:
            left = [p.symbol for p in tree.subexpression_positions(node.left)]
            right = [p.symbol for p in tree.subexpression_positions(node.right)]
            if left == ["a", "b"] and right == ["a", "c"]:
                return node
    raise AssertionError("n3 not found")


class TestFigure1:
    def test_positions_in_order(self):
        tree = _tree()
        assert [p.symbol for p in tree.positions[1:-1]] == ["c", "a", "b", "a", "c", "b", "a"]

    def test_e0_is_deterministic(self):
        assert check_deterministic(_tree()).deterministic

    def test_a_skeleton_holds_exactly_the_a_class_nodes(self):
        """The a-skeleton of e0 contains the three a-positions (p2, p4, p7),
        their LCAs and the pSupLast/pStar nodes added by the construction."""
        tree = _tree()
        skeletons = SkeletonIndex(tree)
        a_skeleton = skeletons.skeleton_for("a")
        position_indices = {p.position_index for p in a_skeleton.positions()}
        assert position_indices == {2, 4, 7}
        # Every skeleton node is an ancestor of some a-position (or one itself).
        for node in a_skeleton.nodes:
            assert any(
                node.enode.is_ancestor_of(tree.positions[i]) for i in position_indices
            )

    def test_n3_colors_and_witnesses(self):
        tree = _tree()
        skeletons = SkeletonIndex(tree)
        n3 = _n3(tree)
        assert set(skeletons.colors[n3.index]) == {"a", "c"}
        assert skeletons.colors[n3.index]["a"].position_index == 4
        assert skeletons.colors[n3.index]["c"].position_index == 5

    def test_example_4_1_transition_from_p3_on_c(self):
        """Example 4.1: from p3 reading c, the candidates at n3 are
        Witness=p5, Next=p1, FirstPos undefined, and checkIfFollow selects p5."""
        tree = _tree()
        skeletons = SkeletonIndex(tree)
        follow = FollowIndex(tree)
        n3 = _n3(tree)
        p3 = tree.positions[3]
        witness = skeletons.witness(n3, "c")
        next_position = skeletons.next_position(n3, "c")
        assert witness.position_index == 5
        assert next_position.position_index == 1
        assert skeletons.first_pos(n3, "c") is None
        assert follow.follows(p3, witness)
        assert not follow.follows(p3, next_position)

    def test_example_4_1_transition_from_p5_on_a(self):
        """Continuing Example 4.1: from p5 reading a, FirstPos(n3, a) = p2 follows."""
        tree = _tree()
        skeletons = SkeletonIndex(tree)
        follow = FollowIndex(tree)
        n3 = _n3(tree)
        p5 = tree.positions[5]
        first_pos = skeletons.first_pos(n3, "a")
        assert first_pos.position_index == 2
        assert follow.follows(p5, first_pos)

    def test_all_matchers_replay_example_4_1(self):
        tree = _tree()
        for matcher_class in (
            ClimbingMatcher,
            KOccurrenceMatcher,
            LowestColoredAncestorMatcher,
            PathDecompositionMatcher,
        ):
            matcher = matcher_class(tree, verify=False)
            p3 = tree.positions[3]
            step_one = matcher.next_position(p3, "c")
            assert step_one.position_index == 5
            step_two = matcher.next_position(step_one, "a")
            assert step_two.position_index == 2

    def test_e0_membership_samples(self):
        tree = _tree()
        oracle = LanguageOracle(tree)
        matcher = KOccurrenceMatcher(tree, verify=False)
        for word, expected in [
            ("ba", True),
            ("cabacba", True),
            ("acacba", True),
            ("cabbacacba", True),
            ("", False),
            ("ab", False),
            ("cba", False),
        ]:
            assert oracle.accepts(list(word)) is expected
            assert matcher.accepts(list(word)) is expected
