"""Experiment E7 — determinism with numeric occurrence indicators (Section 3.3).

Paper claim: determinism of XML-Schema-style expressions with counters can
be decided in time linear in the expression (improving on the O(σ|e|) of
Kilpeläinen).  Expected shape: the counter-aware checker's time grows
close to linearly with the number of particles, and stays cheaper than
expanding the counters and running the Glushkov baseline on the expansion.
"""

import pytest

from repro.automata.glushkov import GlushkovAutomaton
from repro.core.numeric import check_deterministic_numeric
from repro.regex.parse_tree import build_parse_tree

from .workloads import numeric_workload

BLOCKS = [16, 64, 256]


@pytest.mark.parametrize("blocks", BLOCKS)
def test_numeric_determinism_check(benchmark, blocks):
    expr = numeric_workload(blocks)
    report = benchmark(lambda: check_deterministic_numeric(expr))
    assert report.deterministic


@pytest.mark.parametrize("blocks", BLOCKS)
def test_expansion_plus_glushkov_baseline(benchmark, blocks):
    expr = numeric_workload(blocks)

    def run():
        tree = build_parse_tree(expr)  # expands the counters
        return GlushkovAutomaton(tree).is_deterministic()

    assert benchmark(run) is True
