"""Experiment E2 — constant-time follow queries (Theorem 2.4).

Paper claim: after O(|e|) preprocessing, ``checkIfFollow(p, q)`` runs in
O(1).  Expected shape: the per-query cost (total time divided by the fixed
number of queries) stays flat as the expression grows, while the
preprocessing row grows linearly.
"""

import random

import pytest

from repro.core.follow import FollowIndex

from .workloads import SEED, chare_tree

SIZES = [32, 128, 512]
QUERIES = 2000


@pytest.mark.parametrize("factors", SIZES)
def test_follow_index_preprocessing(benchmark, factors):
    tree = chare_tree(factors)
    index = benchmark(lambda: FollowIndex(tree))
    assert index.tree is tree


@pytest.mark.parametrize("factors", SIZES)
def test_follow_queries_constant_time(benchmark, factors):
    tree = chare_tree(factors)
    index = FollowIndex(tree)
    generator = random.Random(SEED)
    pairs = [
        (generator.choice(tree.positions), generator.choice(tree.positions))
        for _ in range(QUERIES)
    ]

    def run():
        return sum(1 for p, q in pairs if index.follows(p, q))

    hits = benchmark(run)
    assert 0 <= hits <= QUERIES
