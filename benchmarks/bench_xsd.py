"""XSD validation through the compiled runtime vs. the direct matcher path.

PR 1 measured the raw matching gap (``bench_runtime``); this module measures
it end to end on the workload the Li et al. schema study singles out:
the *same few content models* validated against *many documents*.  The
XSD validator routes every declared particle through the module-level
``repro.compile`` cache and replays child sequences over the memoized
(and, once hot, densified) transition rows:

* pytest-benchmark timings of repeated whole-document validation through
  the compiled and the direct path (``BENCH_xsd.json`` in CI);
* a verdict-equivalence check: both paths — and a per-call
  freshly-compiled control — must agree on every element of the corpus;
* a throughput smoke gate — compiled ≥ 3× direct on repeated validation —
  so hot-path regressions fail loudly even without timing collection.
"""

from __future__ import annotations

import time

import repro
from repro.xml.xsd import XSDSchema

from .workloads import xsd_workload

#: Whole-document validation passes per timed section; the first pass
#: materializes (and densifies) rows, the rest replay them.
REPEATS = 5

#: Orders per generated document.
ORDER_COUNT = 150


def _schemas():
    declare, document = xsd_workload(ORDER_COUNT)
    compiled = declare(XSDSchema(root="orders"))
    direct = declare(XSDSchema(root="orders", compiled=False))
    return compiled, direct, _sequences(document)


def _sequences(document) -> list[tuple[str, list[str]]]:
    """Extract every element's (name, child sequence) pair once.

    Re-validating documents means re-matching these words; extracting them
    outside the timed region keeps the benchmark about the validator, not
    the element-tree walk both paths share.
    """
    return [(node.name, node.child_sequence()) for node in document.iter_elements()]


def _validate_all(schema: XSDSchema, sequences) -> list[bool]:
    """Per-element verdicts over the whole corpus (no short-circuiting)."""
    validate = schema.validate_children
    return [validate(name, children) for name, children in sequences]


# ---------------------------------------------------------------------------
# pytest-benchmark timings (enabled with --benchmark-enable)
# ---------------------------------------------------------------------------

def test_direct_validation(benchmark):
    _, direct, sequences = _schemas()
    verdicts = benchmark(lambda: [_validate_all(direct, sequences) for _ in range(REPEATS)])
    assert len(verdicts[0]) > ORDER_COUNT


def test_compiled_validation(benchmark):
    compiled, _, sequences = _schemas()
    _validate_all(compiled, sequences)  # warm the rows: steady state is what we time
    verdicts = benchmark(lambda: [_validate_all(compiled, sequences) for _ in range(REPEATS)])
    assert verdicts[0]


# ---------------------------------------------------------------------------
# Correctness and throughput gates (run even with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_verdicts_identical_compiled_vs_direct():
    """Compiled, direct and per-call-recompiled validation must agree."""
    compiled, direct, sequences = _schemas()
    fast = _validate_all(compiled, sequences)
    slow = _validate_all(direct, sequences)
    assert fast == slow
    assert not all(fast)  # the corpus contains violations on purpose
    assert any(fast)
    # Control: a fresh uncached Pattern per content model, direct matching.
    for (name, children), verdict in zip(sequences, fast):
        particle = compiled.particle(name)
        if particle is None:
            assert verdict
            continue
        control = repro.Pattern(particle.to_regex(), compiled=False)
        assert control.match(children) == verdict, name

    assert compiled.is_valid_schema() and direct.is_valid_schema()


def test_compiled_schema_reports_telemetry():
    """The stats surface reflects real materialization after validation."""
    compiled, _, sequences = _schemas()
    _validate_all(compiled, sequences)
    stats = compiled.stats()
    assert set(stats["elements"]) == {"orders", "order"}
    totals = stats["totals"]
    assert totals["transitions_memoized"] == totals["misses"] > 0
    assert totals["dense_rows"] > 0  # the hot content models densified


def _best_of(rounds: int, work) -> float:
    """Minimum wall-clock over *rounds* runs (robust against CI descheduling)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        work()
        best = min(best, time.perf_counter() - start)
    return best


def test_xsd_compiled_speedup_at_least_3x():
    """Repeated schema validation must be ≥ 3× faster on the compiled path.

    Locally the gap is 4–9×; best-of-3 timing keeps the gate from tripping
    on a descheduled shared CI runner rather than on a real regression.
    """
    compiled, direct, sequences = _schemas()
    assert _validate_all(compiled, sequences) == _validate_all(direct, sequences)  # warm + verify

    def run_direct():
        for _ in range(REPEATS):
            _validate_all(direct, sequences)

    def run_compiled():
        for _ in range(REPEATS):
            _validate_all(compiled, sequences)

    direct_total = _best_of(3, run_direct)
    compiled_total = _best_of(3, run_compiled)
    speedup = direct_total / compiled_total
    assert speedup >= 3.0, f"compiled XSD validation only {speedup:.2f}x over the direct path"
