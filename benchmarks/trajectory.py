"""Merge pytest-benchmark JSON artifacts into one perf-trajectory file.

Every benchmark job in CI uploads a ``BENCH_<name>.json`` produced by
``--benchmark-json``; until now they sat in separate artifacts that
nobody ever lined up.  The ``perf-trajectory`` job downloads all of them
into one directory and runs this script (stdlib only, runnable locally
the same way)::

    python benchmarks/trajectory.py bench-artifacts/*.json \
        --out BENCH_trajectory.json --markdown

It writes one merged artifact mapping benchmark name → median seconds /
ops-per-second / rounds / source file, and (with ``--markdown``) prints
a comparison table for the GitHub job summary.  Comparing the merged
artifact across commits is the perf trajectory: any benchmark whose
median drifts between two runs shows up as one line diff in one file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def merge(paths: list[str | Path]) -> dict:
    """Fold pytest-benchmark JSON files into one name-keyed mapping.

    Duplicate benchmark names across files keep the entry with the most
    rounds (the better-sampled measurement) — CI matrices can run the
    same file twice.  Files that are not pytest-benchmark output are
    reported in ``"skipped"`` rather than aborting the merge.
    """
    benchmarks: dict[str, dict] = {}
    sources: list[str] = []
    skipped: list[str] = []
    empty: list[str] = []
    for path in sorted(str(p) for p in paths):
        try:
            data = json.loads(Path(path).read_text())
            entries = data["benchmarks"]
        except (OSError, ValueError, KeyError, TypeError):
            skipped.append(path)
            continue
        sources.append(path)
        if not entries:
            # A leg that ran with benchmarks disabled (a missing
            # --benchmark-enable) writes a well-formed file with zero
            # entries; it must be visible, not silently merged away.
            empty.append(path)
            continue
        for entry in entries:
            try:
                name = entry["name"]
                stats = entry["stats"]
                record = {
                    "median_s": stats["median"],
                    "mean_s": stats["mean"],
                    "ops": stats["ops"],
                    "rounds": stats["rounds"],
                    "source": Path(path).name,
                }
            except (KeyError, TypeError):
                skipped.append(f"{path}::{entry.get('name', '?')}")
                continue
            current = benchmarks.get(name)
            if current is None or record["rounds"] > current["rounds"]:
                benchmarks[name] = record
    return {
        "benchmarks": dict(sorted(benchmarks.items())),
        "sources": sources,
        "empty": empty,
        "skipped": skipped,
    }


def _format_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.3f} µs"


def to_markdown(merged: dict) -> str:
    """A GitHub-flavoured comparison table of the merged benchmarks."""
    lines = [
        "## Benchmark trajectory",
        "",
        f"{len(merged['benchmarks'])} benchmarks from {len(merged['sources'])} artifacts.",
        "",
        "| benchmark | median | ops/s | rounds | source |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for name, record in merged["benchmarks"].items():
        lines.append(
            f"| `{name}` | {_format_time(record['median_s'])} "
            f"| {record['ops']:,.2f} | {record['rounds']} | {record['source']} |"
        )
    if merged.get("empty"):
        lines += ["", f"⚠ Artifacts with zero benchmarks: {', '.join(merged['empty'])}"]
    if merged["skipped"]:
        lines += ["", f"Skipped non-benchmark inputs: {', '.join(merged['skipped'])}"]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", help="pytest-benchmark JSON files (BENCH_*.json)")
    parser.add_argument("--out", default="BENCH_trajectory.json", help="merged output path")
    parser.add_argument(
        "--markdown", action="store_true", help="print a markdown table to stdout"
    )
    parser.add_argument(
        "--min-files",
        type=int,
        default=1,
        metavar="N",
        help="fail unless at least N input files contribute benchmarks "
        "(guards against legs whose JSON went missing or merged empty)",
    )
    arguments = parser.parse_args(argv)
    merged = merge(arguments.inputs)
    Path(arguments.out).write_text(json.dumps(merged, indent=2) + "\n")
    if arguments.markdown:
        print(to_markdown(merged))
    contributing = len(merged["sources"]) - len(merged["empty"])
    if contributing < arguments.min_files:
        print(
            f"only {contributing} artifact(s) contributed benchmarks, "
            f"need {arguments.min_files}; "
            f"empty: {merged['empty'] or 'none'}; skipped: {merged['skipped'] or 'none'}",
            file=sys.stderr,
        )
        return 1
    if not merged["benchmarks"]:
        print("no benchmarks found in the inputs", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
