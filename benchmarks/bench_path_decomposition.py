"""Experiment E4 — path-decomposition matching (Theorem 4.10).

Paper claim: matching costs O(|e| + c_e|w|) where c_e is the +/·
alternation depth; the naïve climbing procedure costs O(|e| + depth(e)|w|).
Expected shape: the path-decomposition rows grow slowly with the nesting
depth (the amortised number of nexttop jumps per symbol stays near c_e),
while the climbing rows track the full tree depth.
"""

import pytest

from repro.matching import ClimbingMatcher, PathDecompositionMatcher

from .workloads import alternation_words

DEPTHS = [2, 4, 8, 16]
WORD_COUNT = 600


@pytest.mark.parametrize("depth", DEPTHS)
def test_path_decomposition_matching(benchmark, depth):
    tree, words = alternation_words(depth, WORD_COUNT)
    matcher = PathDecompositionMatcher(tree, verify=False)

    def run():
        return sum(1 for word in words if matcher.accepts(word))

    accepted = benchmark(run)
    assert accepted == len(words)


@pytest.mark.parametrize("depth", DEPTHS)
def test_climbing_baseline_matching(benchmark, depth):
    tree, words = alternation_words(depth, WORD_COUNT)
    matcher = ClimbingMatcher(tree, verify=False)

    def run():
        return sum(1 for word in words if matcher.accepts(word))

    accepted = benchmark(run)
    assert accepted == len(words)


@pytest.mark.parametrize("depth", [8])
def test_path_decomposition_preprocessing(benchmark, depth):
    tree, _ = alternation_words(depth, WORD_COUNT)
    matcher = benchmark(lambda: PathDecompositionMatcher(tree, verify=False))
    assert matcher.head_count() > 0


@pytest.mark.parametrize("depth", DEPTHS)
def test_jumps_per_symbol_track_alternation_depth(benchmark, depth):
    """Lemma 4.9 instrumentation: amortised nexttop jumps per consumed symbol."""
    tree, words = alternation_words(depth, WORD_COUNT)
    matcher = PathDecompositionMatcher(tree, verify=False)
    total_symbols = sum(len(word) for word in words) or 1

    def run():
        matcher.reset_jump_count()
        for word in words:
            matcher.accepts(word)
        return matcher.jump_count / total_symbols

    jumps_per_symbol = benchmark(run)
    assert jumps_per_symbol <= depth + 6
