"""Shared workload construction for the benchmark harness.

Each experiment (see DESIGN.md, Section 3) uses deterministic-by-construction
expression families from :mod:`repro.regex.generators` plus pre-generated
member words, built once per parameter value and cached so that the timed
sections measure only the algorithm under test.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.regex.generators import (
    bounded_occurrence,
    chare,
    deep_alternation,
    dtd_corpus,
    mixed_content,
    numeric_particles,
    star_free_chain,
)
from repro.regex.parse_tree import ParseTree, build_parse_tree
from repro.regex.words import member_stream, sample_member

#: Seed shared by every workload so benchmark runs are reproducible.
SEED = 20120521  # PODS 2012, May 21


def rng() -> random.Random:
    return random.Random(SEED)


@lru_cache(maxsize=None)
def mixed_content_tree(symbol_count: int) -> ParseTree:
    """The (a1+...+am)* family of experiment E1."""
    return build_parse_tree(mixed_content(symbol_count))


@lru_cache(maxsize=None)
def chare_tree(factor_count: int) -> ParseTree:
    return build_parse_tree(chare(factor_count))


@lru_cache(maxsize=None)
def dtd_like_trees(count: int) -> tuple[ParseTree, ...]:
    return tuple(build_parse_tree(expr) for expr in dtd_corpus(rng(), count))


@lru_cache(maxsize=None)
def kore_workload(k: int, word_length: int) -> tuple[ParseTree, tuple[str, ...]]:
    """A deterministic k-occurrence expression plus a long member word (E3)."""
    expr = bounded_occurrence(k, blocks=4)
    tree = build_parse_tree(expr)
    word = tuple(member_stream(expr, word_length, rng()))
    return tree, word


@lru_cache(maxsize=None)
def alternation_workload(depth: int, word_length: int) -> tuple[ParseTree, tuple[str, ...]]:
    """Bounded +/· alternation depth expressions plus member words (E4)."""
    expr = deep_alternation(depth)
    tree = build_parse_tree(expr)
    generator = rng()
    words: list[str] = []
    while len(words) < word_length:
        words.extend(sample_member(expr, generator))
    # deep_alternation languages are finite; concatenating samples is not a
    # member word, so E4 matches many short member words instead.
    return tree, tuple(words[:word_length])


@lru_cache(maxsize=None)
def alternation_words(depth: int, count: int) -> tuple[ParseTree, tuple[tuple[str, ...], ...]]:
    expr = deep_alternation(depth)
    tree = build_parse_tree(expr)
    generator = rng()
    return tree, tuple(tuple(sample_member(expr, generator)) for _ in range(count))


@lru_cache(maxsize=None)
def large_deterministic_tree(block_count: int) -> tuple[ParseTree, tuple[str, ...]]:
    """A large deterministic expression with many distinct symbols (E5)."""
    expr = bounded_occurrence(2, blocks=block_count)
    tree = build_parse_tree(expr)
    word = tuple(member_stream(expr, 2000, rng()))
    return tree, word


@lru_cache(maxsize=None)
def star_free_workload(factor_count: int, word_count: int):
    """Star-free expression plus a batch of member words (E6)."""
    expr = star_free_chain(factor_count)
    tree = build_parse_tree(expr)
    generator = rng()
    words = tuple(tuple(sample_member(expr, generator)) for _ in range(word_count))
    return expr, tree, words


@lru_cache(maxsize=None)
def numeric_workload(block_count: int):
    """XSD-like particles with counters (E7)."""
    return numeric_particles(block_count, low=2, high=4)


@lru_cache(maxsize=None)
def runtime_corpus(word_count: int = 200, word_length: int = 60):
    """Corpora for the compiled-runtime benchmark: (name, tree, words) triples.

    One family per structural class the dispatch rule distinguishes, each
    with a batch of member words plus mutated non-members, so compiled and
    direct paths are compared on both accepting and rejecting traffic.
    """
    from repro.regex.words import mutate_word, sample_member

    corpora = []
    for name, expr in (
        ("mixed-content", mixed_content(12)),
        ("chare", chare(6)),
        ("kore", bounded_occurrence(2, blocks=4)),
        ("deep-alternation", deep_alternation(5)),
    ):
        tree = build_parse_tree(expr)
        generator = rng()
        alphabet = tree.alphabet.as_list()
        words: list[tuple[str, ...]] = []
        while len(words) < word_count:
            member = sample_member(expr, generator)
            while len(member) < word_length and name in ("mixed-content", "kore"):
                member = member + sample_member(expr, generator)
            words.append(tuple(member))
            if len(words) < word_count:
                words.append(tuple(mutate_word(member, alphabet, generator)))
        corpora.append((name, tree, tuple(words[:word_count])))
    return tuple(corpora)


@lru_cache(maxsize=None)
def repeated_match_corpus(pool_size: int = 80, word_length: int = 100, stream_length: int = 3200):
    """Repeated-match streams for the batch kernel: (name, tree, stream) triples.

    Models the Li et al. observation the kernel exploits: real validation
    traffic re-matches the same few child sequences over and over.  Each
    family's stream of *stream_length* words draws (with replacement) from
    a pool of only *pool_size* distinct words, so a corpus-level dedup
    answers most of the stream from ``pool_size`` scans while a per-word
    driver pays for every draw.
    """
    streams = []
    for name, tree, pool in runtime_corpus(pool_size, word_length):
        generator = rng()
        stream = tuple(generator.choice(pool) for _ in range(stream_length))
        streams.append((name, tree, stream))
    return tuple(streams)


@lru_cache(maxsize=None)
def xsd_workload(order_count: int):
    """An XSD-style schema plus generated documents (the Li et al. workload).

    The schema exercises the counter features DTDs lack (``minOccurs`` /
    ``maxOccurs`` bounds, optional compositors); the returned documents are
    a mix of valid orders and orders mutated to violate a bound, so the
    compiled and direct validation paths are compared on both verdicts.
    """
    from repro.xml import element
    from repro.xml.xsd import XSDSchema, choice, element_particle, sequence

    def declare(schema: XSDSchema) -> XSDSchema:
        schema.declare(
            "orders",
            sequence(element_particle("vendor", 0, 1), element_particle("order", 1, None)),
        )
        schema.declare(
            "order",
            sequence(
                element_particle("sku"),
                element_particle("qty", 1, 3),
                choice(
                    element_particle("description"),
                    element_particle("summary"),
                    min_occurs=0,
                    max_occurs=1,
                ),
                element_particle("tag", 0, None),
            ),
        )
        return schema

    generator = rng()
    orders = []
    for index in range(order_count):
        children = [element("sku", text="s")]
        children.extend(element("qty") for _ in range(generator.randint(1, 3)))
        if generator.random() < 0.5:
            children.append(element(generator.choice(["description", "summary"])))
        children.extend(element("tag") for _ in range(generator.randint(8, 24)))
        if index % 5 == 4:  # every fifth order violates a bound or the order
            if generator.random() < 0.5:
                children.insert(1, element("qty"))
                children.insert(1, element("qty"))
                children.insert(1, element("qty"))  # qty maxOccurs=3 exceeded
            else:
                children.append(element("sku"))  # trailing sku after tags
        orders.append(element("order", *children))
    document = element("orders", element("vendor"), *orders)
    return declare, document


@lru_cache(maxsize=None)
def validation_workload(product_count: int):
    """A catalog DTD plus a generated document with *product_count* products (E8)."""
    from repro.xml import element, parse_dtd

    dtd = parse_dtd(
        """
        <!ELEMENT catalog (product+)>
        <!ELEMENT product (name, price, (description | summary)?, tag*)>
        <!ELEMENT name (#PCDATA)> <!ELEMENT price (#PCDATA)>
        <!ELEMENT description (#PCDATA)> <!ELEMENT summary (#PCDATA)> <!ELEMENT tag (#PCDATA)>
        """
    )
    generator = rng()
    products = []
    for _ in range(product_count):
        children = [element("name", text="n"), element("price", text="9")]
        if generator.random() < 0.5:
            children.append(element(generator.choice(["description", "summary"])))
        children.extend(element("tag") for _ in range(generator.randint(0, 3)))
        products.append(element("product", *children))
    return dtd, element("catalog", *products)
