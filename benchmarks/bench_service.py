"""The validation service's batch operations vs. the per-word request loop.

The service exists so that clients stop issuing one request per word: a
per-word loop pays the request accounting, the compile-cache probe and the
pattern dispatch once *per word*, while ``match_batch`` pays them once per
corpus and then rides the warm batch paths — one encoded-corpus pass of
the star-free multi-matcher (Theorem 4.12) or a compiled-runtime replay
over rows shared by every worker.  This module tracks that gap:

* pytest-benchmark timings of both shapes on warm patterns
  (``BENCH_service.json`` in CI);
* verdict-equivalence checks: the batch paths, the per-word loop and a
  freshly compiled uncached control must agree on every word;
* a throughput smoke gate — one batch request ≥ 3× the per-word request
  loop on warm patterns — so a regression in the batch plumbing fails
  loudly even without timing collection.
"""

from __future__ import annotations

import json
import random
import time
import urllib.request

import repro
from repro.service import ServiceHTTPServer, ValidationService

#: One starred pattern (compiled-runtime batch path) and one star-free
#: pattern (multi-matcher batch path); the gate covers both.
PATTERNS = {
    "starred": "(ab+b(b?)a)*",
    "star-free": "(a+b)(c?)(d+e)f",
}

WORD_COUNT = 2000

#: Whole-corpus passes per timed section (warm replay is the scenario).
REPEATS = 3


def _corpus(expr: str) -> tuple[list[str], list[bool]]:
    """Member-biased random words plus single-threaded oracle verdicts."""
    reference = repro.Pattern(expr, compiled=False)
    alphabet = reference.tree.alphabet.as_list()
    rng = random.Random(20120521)
    words = [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(2, 8)))
        for _ in range(WORD_COUNT)
    ]
    return words, [reference.match(word) for word in words]


def _per_word_loop(service: ValidationService, expr: str, words: list[str]) -> list[bool]:
    """The naive client: one service request per word."""
    return [service.match_batch(expr, [word])[0] for word in words]


# ---------------------------------------------------------------------------
# pytest-benchmark timings (enabled with --benchmark-enable)
# ---------------------------------------------------------------------------

def test_per_word_requests(benchmark):
    expr = PATTERNS["starred"]
    words, _ = _corpus(expr)
    with ValidationService(workers=8) as service:
        service.match_batch(expr, words)  # warm the pattern and its rows
        verdicts = benchmark(lambda: [_per_word_loop(service, expr, words) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(words)


def test_batch_requests(benchmark):
    expr = PATTERNS["starred"]
    words, _ = _corpus(expr)
    with ValidationService(workers=8) as service:
        service.match_batch(expr, words)
        verdicts = benchmark(lambda: [service.match_batch(expr, words) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(words)


def test_batch_requests_star_free(benchmark):
    expr = PATTERNS["star-free"]
    words, _ = _corpus(expr)
    with ValidationService(workers=8) as service:
        service.match_batch(expr, words)
        verdicts = benchmark(lambda: [service.match_batch(expr, words) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(words)


# ---------------------------------------------------------------------------
# Correctness and throughput gates (run even with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_batch_verdicts_identical_to_per_word_and_oracle():
    """Batch, per-word-loop and fresh-pattern control must all agree."""
    with ValidationService(workers=8, min_chunk=64) as service:
        for label, expr in PATTERNS.items():
            words, oracle = _corpus(expr)
            assert any(oracle) and not all(oracle), label  # both verdicts present
            batch = service.match_batch(expr, words)
            assert batch == oracle, f"{label}: batch diverged from the oracle"
            assert _per_word_loop(service, expr, words) == oracle, label
    # the two batch paths really are distinct
    assert repro.compile(PATTERNS["starred"]).describe()["batch_path"] == "compiled-kernel"
    assert repro.compile(PATTERNS["star-free"]).describe()["batch_path"] == "star-free-multi"


def _best_of(rounds: int, work) -> float:
    """Minimum wall-clock over *rounds* runs (robust against CI descheduling)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        work()
        best = min(best, time.perf_counter() - start)
    return best


def test_http_round_trip_on_an_ephemeral_port():
    """One real HTTP batch request against a server on an ephemeral port.

    Port 0 lets the kernel pick a free port which is then read back from
    ``server_address`` — a fixed port collides with whatever else a
    shared CI runner is doing (the ci.yml smoke step reads the bound
    port back the same way).
    """
    import threading

    words, oracle = _corpus(PATTERNS["starred"])
    with ValidationService(workers=4) as service:
        server = ServiceHTTPServer(("127.0.0.1", 0), service)
        port = server.server_address[1]
        assert port != 0
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/match",
                data=json.dumps(
                    {"pattern": PATTERNS["starred"], "words": words}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.load(response)
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
    assert body["verdicts"] == oracle


def test_batch_speedup_at_least_3x():
    """One batch request must be ≥ 3× the per-word request loop, warm.

    Locally the gap is 10–16×; best-of-3 timing keeps the gate from
    tripping on a descheduled shared CI runner rather than on a real
    regression in the batch plumbing.
    """
    with ValidationService(workers=8) as service:
        for label, expr in PATTERNS.items():
            words, oracle = _corpus(expr)
            assert service.match_batch(expr, words) == oracle  # warm + verify
            per_word = _best_of(3, lambda: _per_word_loop(service, expr, words))
            batch = _best_of(3, lambda: service.match_batch(expr, words))
            speedup = per_word / batch
            assert speedup >= 3.0, (
                f"{label}: batch only {speedup:.2f}x over the per-word request loop"
            )


# ---------------------------------------------------------------------------
# The aio streaming front: sustained concurrency, p99, bounded memory
# ---------------------------------------------------------------------------

#: In-flight streaming requests for the sustained-concurrency gate.
STREAM_CLIENTS = 200
STREAM_WORDS_PER_CLIENT = 60

#: The bounded-memory gate streams a corpus bigger than the buffered
#: path's request-body cap — a corpus no client could POST as one JSON
#: body — and requires the server's lifetime peak RSS to stay below even
#: one in-memory copy of it.
HUGE_CORPUS_BYTES = 72 * 1024 * 1024


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))]


def _client_corpora() -> tuple[list[list[str]], list[list[bool]]]:
    """One word list (and its oracle verdicts) per streaming client."""
    reference = repro.Pattern(PATTERNS["starred"], compiled=False)
    alphabet = reference.tree.alphabet.as_list()
    rng = random.Random(20120807)
    corpora, oracles = [], []
    for _ in range(STREAM_CLIENTS):
        words = [
            "".join(rng.choice(alphabet) for _ in range(rng.randint(2, 10)))
            for _ in range(STREAM_WORDS_PER_CLIENT)
        ]
        corpora.append(words)
        oracles.append([reference.match(word) for word in words])
    return corpora, oracles


def _stream_match(port: int, expr: str, words: list[str]) -> tuple[list, float]:
    """One NDJSON streaming /match request over a blocking socket.

    Uses the same thread-pool client harness as the threaded-front burst
    so the two fronts are measured through identical client machinery;
    only the wire protocol differs.  Returns (verdicts, seconds).
    """
    import socket

    start = time.perf_counter()
    lines = [json.dumps({"pattern": expr})] + [json.dumps(word) for word in words]
    body = ("\n".join(lines) + "\n").encode()
    head = (
        "POST /match HTTP/1.1\r\nHost: bench\r\n"
        "Content-Type: application/x-ndjson\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode()
    for attempt in range(8):
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=60) as sock:
                sock.sendall(head + body)
                raw = bytearray()
                while True:
                    piece = sock.recv(1 << 16)
                    if not piece:
                        break
                    raw += piece
            break
        except (ConnectionError, OSError):
            if attempt == 7:
                raise
            time.sleep(0.05 * (attempt + 1))
    head_end = raw.index(b"\r\n\r\n")
    assert b" 200 " in raw[:head_end].split(b"\r\n", 1)[0], raw[:head_end]
    payload = bytearray()
    cursor = head_end + 4
    while True:
        size_end = raw.index(b"\r\n", cursor)
        size = int(raw[cursor:size_end], 16)
        if size == 0:
            break
        payload += raw[size_end + 2 : size_end + 2 + size]
        cursor = size_end + 2 + size + 2
    decoded = [json.loads(line) for line in bytes(payload).splitlines()]
    trailer = decoded[-1]
    assert trailer.get("done") is True and trailer["count"] == len(words)
    return decoded[1:-1], time.perf_counter() - start


def _threaded_match(port: int, expr: str, words: list[str]) -> tuple[list, float]:
    """One buffered /match request against the threaded front.

    A 200-way connect burst can overflow the threaded server's listen
    backlog; a reset connection is retried (as any real client would),
    and the retries count toward this request's latency — backlog
    overflow *is* part of the thread-per-connection tail.
    """
    start = time.perf_counter()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/match",
        data=json.dumps({"pattern": expr, "words": words}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    for attempt in range(8):
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                verdicts = json.load(response)["verdicts"]
            break
        except (ConnectionError, OSError):
            if attempt == 7:
                raise
            time.sleep(0.05 * (attempt + 1))
    return verdicts, time.perf_counter() - start


def test_sustained_streaming_concurrency_gate():
    """≥ 200 in-flight streams: oracle-identical verdicts, aio p99 < threaded p99.

    The threaded front answers the same 200-way burst with a thread per
    connection; the aio front runs them through one event loop with
    micro-batched pool work.  The gate requires every aio verdict to
    match the single-threaded oracle and the aio tail latency to beat the
    thread-per-connection tail at the same concurrency.
    """
    import asyncio
    import concurrent.futures
    import threading

    from repro.service.aio import AsyncServiceServer

    expr = PATTERNS["starred"]
    corpora, oracles = _client_corpora()

    # -- threaded front under the same burst --------------------------------
    with ValidationService(workers=8) as threaded_service:
        server = ServiceHTTPServer(("127.0.0.1", 0), threaded_service)
        threaded_port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            threaded_service.match_batch(expr, corpora[0])  # warm
            with concurrent.futures.ThreadPoolExecutor(STREAM_CLIENTS) as pool:
                threaded_results = list(
                    pool.map(
                        lambda words: _threaded_match(threaded_port, expr, words),
                        corpora,
                    )
                )
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
    threaded_p99 = _percentile([seconds for _, seconds in threaded_results], 0.99)
    for (verdicts, _), oracle in zip(threaded_results, oracles):
        assert verdicts == oracle

    # -- aio front: the identical burst through the identical harness --------
    with ValidationService(workers=8) as aio_service:
        front = AsyncServiceServer(aio_service)
        loop = asyncio.new_event_loop()
        ready = threading.Event()
        stop = concurrent.futures.Future()

        async def boot():
            await front.start("127.0.0.1", 0)
            ready.set()
            await asyncio.wrap_future(stop)
            await front.close()

        runner = threading.Thread(target=lambda: loop.run_until_complete(boot()), daemon=True)
        runner.start()
        ready.wait(timeout=10)
        try:
            aio_port = front.address()[1]
            _stream_match(aio_port, expr, corpora[0])  # warm
            with concurrent.futures.ThreadPoolExecutor(STREAM_CLIENTS) as pool:
                aio_results = list(
                    pool.map(
                        lambda words: _stream_match(aio_port, expr, words),
                        corpora,
                    )
                )
            assert front.streams >= STREAM_CLIENTS
        finally:
            stop.set_result(None)
            runner.join(timeout=10)
            loop.close()
    aio_p99 = _percentile([seconds for _, seconds in aio_results], 0.99)
    for (verdicts, _), oracle in zip(aio_results, oracles):
        assert verdicts == oracle

    print(
        f"\n{STREAM_CLIENTS} in-flight: aio p99 {aio_p99 * 1000:.1f}ms, "
        f"threaded p99 {threaded_p99 * 1000:.1f}ms"
    )
    assert aio_p99 < threaded_p99, (
        f"aio p99 {aio_p99 * 1000:.1f}ms not better than "
        f"threaded p99 {threaded_p99 * 1000:.1f}ms at {STREAM_CLIENTS}-way concurrency"
    )


def test_streaming_peak_rss_stays_below_the_corpus():
    """Stream a corpus the buffered path could never accept; bound peak RSS.

    The corpus exceeds ``MAX_BODY_BYTES`` (a buffered POST would be
    rejected with 413 before parsing), so NDJSON streaming is the only
    way to validate it in one request — and the server process's
    lifetime peak RSS (``VmHWM``) must stay below the size of one
    in-memory copy of the corpus, proving neither the body nor the
    verdicts are ever materialised.
    """
    import os
    import socket
    import subprocess
    import sys

    import pytest

    if not os.path.exists("/proc/self/status"):
        pytest.skip("VmHWM requires /proc")

    from repro.service.http import MAX_BODY_BYTES

    assert HUGE_CORPUS_BYTES > MAX_BODY_BYTES

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.path.dirname(__file__), "..", "src"),
                      env.get("PYTHONPATH", "")])
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--front", "aio", "--port", "0"],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        banner = process.stdout.readline()
        port = int(banner.rsplit(":", 1)[1].split()[0].rstrip("/"))

        word = "abba" * 256  # 1 KiB per line, a member of the pattern
        line = (json.dumps(word) + "\n").encode()
        count = HUGE_CORPUS_BYTES // len(line) + 1

        with socket.create_connection(("127.0.0.1", port), timeout=120) as sock:
            sock.sendall(
                b"POST /match HTTP/1.1\r\nHost: bench\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
            )
            header = (json.dumps({"pattern": PATTERNS["starred"]}) + "\n").encode()
            sock.sendall(f"{len(header):x}\r\n".encode() + header + b"\r\n")
            sock.settimeout(300)

            # Upload and download must interleave: a reader thread drains
            # verdicts while the corpus is still being generated.
            received = bytearray()

            def drain() -> None:
                while True:
                    piece = sock.recv(1 << 20)
                    if not piece:
                        return
                    received.extend(piece)

            import threading

            reader = threading.Thread(target=drain, daemon=True)
            reader.start()
            frame = line * 64  # 64 KiB chunks
            sent = 0
            while sent < count:
                batch = min(64, count - sent)
                piece = frame if batch == 64 else line * batch
                sock.sendall(f"{len(piece):x}\r\n".encode() + piece + b"\r\n")
                sent += batch
            sock.sendall(b"0\r\n\r\n")
            reader.join(timeout=300)

        body = bytes(received)
        head_end = body.index(b"\r\n\r\n")
        assert b" 200 " in body[:head_end].split(b"\r\n", 1)[0]
        # The trailer rides in the last chunks; "done" proves the server
        # saw every line rather than bailing early.
        trailer_at = body.rindex(b'{"count":')
        trailer = json.loads(body[trailer_at : body.index(b"\n", trailer_at)])
        assert trailer == {"count": count, "done": True}

        with open(f"/proc/{process.pid}/status") as status:
            fields = dict(
                line.split(":", 1) for line in status.read().splitlines() if ":" in line
            )
        peak_bytes = int(fields["VmHWM"].split()[0]) * 1024
        print(
            f"\nstreamed {count} words ({count * len(line) / 2**20:.0f} MiB), "
            f"server VmHWM {peak_bytes / 2**20:.0f} MiB"
        )
        assert peak_bytes < HUGE_CORPUS_BYTES, (
            f"server peak RSS {peak_bytes / 2**20:.0f} MiB is not below the "
            f"{HUGE_CORPUS_BYTES / 2**20:.0f} MiB corpus it streamed"
        )
    finally:
        process.terminate()
        process.wait(timeout=30)


def test_streaming_request_timing(benchmark):
    """pytest-benchmark timing of one warm NDJSON streaming request.

    The CI ``service-aio`` job uploads this as ``BENCH_service_aio.json``
    so the perf trajectory tracks the streaming path alongside the
    buffered one.
    """
    import asyncio
    import concurrent.futures
    import threading

    from repro.service.aio import AsyncServiceServer

    expr = PATTERNS["starred"]
    words, oracle = _corpus(expr)
    with ValidationService(workers=8) as service:
        front = AsyncServiceServer(service)
        loop = asyncio.new_event_loop()
        ready = threading.Event()
        stop = concurrent.futures.Future()

        async def boot():
            await front.start("127.0.0.1", 0)
            ready.set()
            await asyncio.wrap_future(stop)
            await front.close()

        runner = threading.Thread(target=lambda: loop.run_until_complete(boot()), daemon=True)
        runner.start()
        ready.wait(timeout=10)
        try:
            port = front.address()[1]
            verdicts, _ = _stream_match(port, expr, words)  # warm + verify
            assert verdicts == oracle
            benchmark(lambda: _stream_match(port, expr, words))
        finally:
            stop.set_result(None)
            runner.join(timeout=10)
            loop.close()
