"""The validation service's batch operations vs. the per-word request loop.

The service exists so that clients stop issuing one request per word: a
per-word loop pays the request accounting, the compile-cache probe and the
pattern dispatch once *per word*, while ``match_batch`` pays them once per
corpus and then rides the warm batch paths — one encoded-corpus pass of
the star-free multi-matcher (Theorem 4.12) or a compiled-runtime replay
over rows shared by every worker.  This module tracks that gap:

* pytest-benchmark timings of both shapes on warm patterns
  (``BENCH_service.json`` in CI);
* verdict-equivalence checks: the batch paths, the per-word loop and a
  freshly compiled uncached control must agree on every word;
* a throughput smoke gate — one batch request ≥ 3× the per-word request
  loop on warm patterns — so a regression in the batch plumbing fails
  loudly even without timing collection.
"""

from __future__ import annotations

import json
import random
import time
import urllib.request

import repro
from repro.service import ServiceHTTPServer, ValidationService

#: One starred pattern (compiled-runtime batch path) and one star-free
#: pattern (multi-matcher batch path); the gate covers both.
PATTERNS = {
    "starred": "(ab+b(b?)a)*",
    "star-free": "(a+b)(c?)(d+e)f",
}

WORD_COUNT = 2000

#: Whole-corpus passes per timed section (warm replay is the scenario).
REPEATS = 3


def _corpus(expr: str) -> tuple[list[str], list[bool]]:
    """Member-biased random words plus single-threaded oracle verdicts."""
    reference = repro.Pattern(expr, compiled=False)
    alphabet = reference.tree.alphabet.as_list()
    rng = random.Random(20120521)
    words = [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(2, 8)))
        for _ in range(WORD_COUNT)
    ]
    return words, [reference.match(word) for word in words]


def _per_word_loop(service: ValidationService, expr: str, words: list[str]) -> list[bool]:
    """The naive client: one service request per word."""
    return [service.match_batch(expr, [word])[0] for word in words]


# ---------------------------------------------------------------------------
# pytest-benchmark timings (enabled with --benchmark-enable)
# ---------------------------------------------------------------------------

def test_per_word_requests(benchmark):
    expr = PATTERNS["starred"]
    words, _ = _corpus(expr)
    with ValidationService(workers=8) as service:
        service.match_batch(expr, words)  # warm the pattern and its rows
        verdicts = benchmark(lambda: [_per_word_loop(service, expr, words) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(words)


def test_batch_requests(benchmark):
    expr = PATTERNS["starred"]
    words, _ = _corpus(expr)
    with ValidationService(workers=8) as service:
        service.match_batch(expr, words)
        verdicts = benchmark(lambda: [service.match_batch(expr, words) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(words)


def test_batch_requests_star_free(benchmark):
    expr = PATTERNS["star-free"]
    words, _ = _corpus(expr)
    with ValidationService(workers=8) as service:
        service.match_batch(expr, words)
        verdicts = benchmark(lambda: [service.match_batch(expr, words) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(words)


# ---------------------------------------------------------------------------
# Correctness and throughput gates (run even with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_batch_verdicts_identical_to_per_word_and_oracle():
    """Batch, per-word-loop and fresh-pattern control must all agree."""
    with ValidationService(workers=8, min_chunk=64) as service:
        for label, expr in PATTERNS.items():
            words, oracle = _corpus(expr)
            assert any(oracle) and not all(oracle), label  # both verdicts present
            batch = service.match_batch(expr, words)
            assert batch == oracle, f"{label}: batch diverged from the oracle"
            assert _per_word_loop(service, expr, words) == oracle, label
    # the two batch paths really are distinct
    assert repro.compile(PATTERNS["starred"]).describe()["batch_path"] == "compiled-runtime"
    assert repro.compile(PATTERNS["star-free"]).describe()["batch_path"] == "star-free-multi"


def _best_of(rounds: int, work) -> float:
    """Minimum wall-clock over *rounds* runs (robust against CI descheduling)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        work()
        best = min(best, time.perf_counter() - start)
    return best


def test_http_round_trip_on_an_ephemeral_port():
    """One real HTTP batch request against a server on an ephemeral port.

    Port 0 lets the kernel pick a free port which is then read back from
    ``server_address`` — a fixed port collides with whatever else a
    shared CI runner is doing (the ci.yml smoke step reads the bound
    port back the same way).
    """
    import threading

    words, oracle = _corpus(PATTERNS["starred"])
    with ValidationService(workers=4) as service:
        server = ServiceHTTPServer(("127.0.0.1", 0), service)
        port = server.server_address[1]
        assert port != 0
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/match",
                data=json.dumps(
                    {"pattern": PATTERNS["starred"], "words": words}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.load(response)
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
    assert body["verdicts"] == oracle


def test_batch_speedup_at_least_3x():
    """One batch request must be ≥ 3× the per-word request loop, warm.

    Locally the gap is 10–16×; best-of-3 timing keeps the gate from
    tripping on a descheduled shared CI runner rather than on a real
    regression in the batch plumbing.
    """
    with ValidationService(workers=8) as service:
        for label, expr in PATTERNS.items():
            words, oracle = _corpus(expr)
            assert service.match_batch(expr, words) == oracle  # warm + verify
            per_word = _best_of(3, lambda: _per_word_loop(service, expr, words))
            batch = _best_of(3, lambda: service.match_batch(expr, words))
            speedup = per_word / batch
            assert speedup >= 3.0, (
                f"{label}: batch only {speedup:.2f}x over the per-word request loop"
            )
