"""Experiment E3 — k-occurrence matching (Theorem 4.3).

Paper claim: a deterministic k-ORE can be matched in O(|e| + k|w|).
Expected shape: for a fixed word length, matching time grows roughly
linearly with k (the number of candidate positions probed per symbol) and
stays well below the Glushkov baseline's preprocessing for large alphabets.
"""

import pytest

from repro.matching import GlushkovMatcher, KOccurrenceMatcher

from .workloads import kore_workload

WORD_LENGTH = 4000
K_VALUES = [1, 2, 4, 8]


@pytest.mark.parametrize("k", K_VALUES)
def test_kore_matching(benchmark, k):
    tree, word = kore_workload(k, WORD_LENGTH)
    matcher = KOccurrenceMatcher(tree, verify=False)
    assert matcher.occurrence_bound == k
    assert benchmark(lambda: matcher.accepts(word)) is True


@pytest.mark.parametrize("k", [2, 8])
def test_kore_preprocessing(benchmark, k):
    tree, _ = kore_workload(k, WORD_LENGTH)
    matcher = benchmark(lambda: KOccurrenceMatcher(tree, verify=False))
    assert matcher.tree is tree


@pytest.mark.parametrize("k", [2, 8])
def test_glushkov_baseline_matching(benchmark, k):
    tree, word = kore_workload(k, WORD_LENGTH)
    matcher = GlushkovMatcher(tree, verify=False)
    assert benchmark(lambda: matcher.accepts(word)) is True
