"""Compiled lazy-DFA runtime vs. the direct matcher path.

The paper gives (near-)constant work per input symbol, but the direct path
pays Python-level structure queries for every symbol; the compiled runtime
(:mod:`repro.matching.runtime`) memoizes ``(state, symbol) → state`` rows
on first use and replays them as integer probes.  This module tracks that
gap:

* pytest-benchmark timings of repeated batch matching through both paths
  (stored in ``BENCH_*.json`` by the CI bench job);
* a verdict-equivalence check across every registered strategy (the
  runtime may never change an accept/reject answer);
* a throughput smoke assertion — compiled ≥ 3× direct on repeated matching
  of the shared corpora — so regressions in the hot loop fail loudly even
  when timings are not being collected.
"""

from __future__ import annotations

import time

import pytest

from repro.matching import STRATEGIES, CompiledRuntime, build_matcher

from .workloads import runtime_corpus

#: How many times the whole corpus is re-matched in the timed sections.
#: "Repeated matching" is the scenario the runtime exists for: the first
#: pass materializes rows, the rest replay them (the Li et al. workload).
REPEATS = 5

CORPUS_NAMES = ("mixed-content", "chare", "kore", "deep-alternation")


def _corpus(name: str):
    for corpus_name, tree, words in runtime_corpus():
        if corpus_name == name:
            return tree, words
    raise KeyError(name)


def _match_direct(matcher, words) -> list[bool]:
    accepts = matcher.accepts
    return [accepts(word) for word in words]


def _match_compiled(runtime, words) -> list[bool]:
    accepts_encoded = runtime.accepts_encoded
    encode = runtime.encode
    return [accepts_encoded(encode(word)) for word in words]


# ---------------------------------------------------------------------------
# pytest-benchmark timings (enabled with --benchmark-enable)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_direct_matching(benchmark, name):
    tree, words = _corpus(name)
    matcher = build_matcher(tree, verify=False)
    verdicts = benchmark(lambda: [_match_direct(matcher, words) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(words)


@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_compiled_matching(benchmark, name):
    tree, words = _corpus(name)
    runtime = CompiledRuntime(build_matcher(tree, verify=False))
    runtime.match_many(words)  # warm the rows: steady state is what we time
    verdicts = benchmark(lambda: [_match_compiled(runtime, words) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(words)


@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_compiled_encoded_batch(benchmark, name):
    """Upper bound: words pre-encoded once, only the integer loop timed."""
    tree, words = _corpus(name)
    runtime = CompiledRuntime(build_matcher(tree, verify=False))
    encoded = [runtime.encode(word) for word in words]
    runtime.match_many(words)
    accepts_encoded = runtime.accepts_encoded
    verdicts = benchmark(
        lambda: [[accepts_encoded(codes) for codes in encoded] for _ in range(REPEATS)]
    )
    assert len(verdicts[0]) == len(words)


# ---------------------------------------------------------------------------
# Correctness and throughput gates (run even with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_verdicts_identical_across_strategies():
    """The runtime must agree with every strategy on every corpus word."""
    for name, tree, words in runtime_corpus():
        reference: list[bool] | None = None
        for strategy, matcher_class in STRATEGIES.items():
            matcher = matcher_class(tree, verify=False)
            direct = _match_direct(matcher, words)
            compiled = CompiledRuntime(matcher).match_many(words)
            assert compiled == direct, f"{name}/{strategy}: runtime diverged"
            if reference is None:
                reference = direct
            else:
                assert direct == reference, f"{name}/{strategy}: strategies diverged"


def _best_of(rounds: int, work) -> float:
    """Minimum wall-clock over *rounds* runs (robust against CI descheduling)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        work()
        best = min(best, time.perf_counter() - start)
    return best


def test_compiled_speedup_at_least_3x():
    """Repeated matching through the runtime must be ≥ 3× the direct path.

    Locally the gap is 4–12× per corpus; best-of-3 timing keeps the gate
    from tripping on a descheduled shared CI runner rather than on a real
    hot-loop regression.
    """
    direct_total = 0.0
    compiled_total = 0.0
    for name, tree, words in runtime_corpus():
        matcher = build_matcher(tree, verify=False)
        runtime = CompiledRuntime(matcher)
        assert runtime.match_many(words) == _match_direct(matcher, words)  # warm + verify

        def run_direct():
            for _ in range(REPEATS):
                _match_direct(matcher, words)

        def run_compiled():
            for _ in range(REPEATS):
                _match_compiled(runtime, words)

        direct_total += _best_of(3, run_direct)
        compiled_total += _best_of(3, run_compiled)

    speedup = direct_total / compiled_total
    assert speedup >= 3.0, f"compiled runtime only {speedup:.2f}x over the direct path"
