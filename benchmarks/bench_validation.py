"""Experiment E8 — end-to-end DTD validation.

The paper's motivating application: validating an XML document checks each
element's child sequence against a deterministic content model.  Expected
shape: validation time grows linearly with the document size (the content
models are fixed), and the one-off validator construction (determinism
checks + matcher preprocessing) is independent of the document.
"""

import pytest

from repro.xml import DTDValidator

from .workloads import validation_workload

PRODUCTS = [100, 400, 1600]


@pytest.mark.parametrize("products", PRODUCTS)
def test_document_validation(benchmark, products):
    dtd, catalog = validation_workload(products)
    validator = DTDValidator(dtd)
    assert benchmark(lambda: validator.is_valid(catalog)) is True


def test_validator_construction(benchmark):
    dtd, _ = validation_workload(10)
    validator = benchmark(lambda: DTDValidator(dtd))
    assert validator.is_valid(validation_workload(10)[1])


@pytest.mark.parametrize("products", [400])
def test_streaming_child_checks(benchmark, products):
    dtd, catalog = validation_workload(products)
    validator = DTDValidator(dtd)

    def run():
        valid = 0
        for element in catalog.iter_elements():
            checker = validator.checker_for(element.name)
            if checker is None:
                continue
            children_ok = all(checker.feed(child) for child in element.child_sequence())
            if children_ok and checker.complete():
                valid += 1
        return valid

    assert benchmark(run) > 0
