"""Experiment E6 — star-free multi-word matching (Theorem 4.12).

Paper claim: N words can be matched against a star-free deterministic
expression in combined time O(|e| + |w1| + ... + |wN|), i.e. one traversal
of the expression regardless of how many words are matched.  Expected
shape: the batch matcher's time grows with the total word volume only,
while matching the words one by one with a per-word matcher re-pays the
per-word transition simulation overhead.
"""

import pytest

from repro.matching import KOccurrenceMatcher, StarFreeMultiMatcher

from .workloads import star_free_workload

FACTORS = 60
WORD_COUNTS = [100, 400, 1600]


@pytest.mark.parametrize("words", WORD_COUNTS)
def test_star_free_batch_matching(benchmark, words):
    _, tree, batch = star_free_workload(FACTORS, words)
    matcher = StarFreeMultiMatcher(tree, verify=False)

    def run():
        return sum(matcher.match_all(list(batch)))

    accepted = benchmark(run)
    assert accepted == len(batch)


@pytest.mark.parametrize("words", WORD_COUNTS)
def test_per_word_baseline(benchmark, words):
    _, tree, batch = star_free_workload(FACTORS, words)
    matcher = KOccurrenceMatcher(tree, verify=False)

    def run():
        return sum(1 for word in batch if matcher.accepts(word))

    accepted = benchmark(run)
    assert accepted == len(batch)


@pytest.mark.parametrize("factors", [30, 120])
def test_star_free_expression_scaling(benchmark, factors):
    _, tree, batch = star_free_workload(factors, 200)
    matcher = StarFreeMultiMatcher(tree, verify=False)
    accepted = benchmark(lambda: sum(matcher.match_all(list(batch))))
    assert accepted == len(batch)
