"""Benchmark package marker.

The bench modules import their shared workloads with a package-relative
import (``from .workloads import ...``); without this file pytest imports
them as top-level modules and the relative import fails, so ``pytest
benchmarks`` could never collect.  Keeping them a package also lets the CI
smoke job run them with ``--benchmark-disable`` as plain correctness tests.
"""
