"""Batch matching kernel vs. the per-word compiled-runtime loop.

The compiled runtime already answers repeated matching with one dict/array
probe per symbol, but its drivers re-enter the interpreter for every
symbol of every word.  The kernel (:mod:`repro.matching.kernel`) flattens
the runtime's rows into one premultiplied table, dedups the corpus, and
strides each *distinct* word through the table — so a repeated-match
stream (the Li et al. workload: few distinct child sequences, matched
millions of times) collapses to a handful of branch-free scans plus an
index fan-out.  This module tracks that gap:

* pytest-benchmark timings of the per-word loop, the pure-Python kernel
  and (when the shared object is present) the native kernel;
* a verdict-equivalence check, cold (fallback replays included) and warm;
* the throughput gate of the kernel's existence: on the repeated-match
  corpora the **pure-Python** kernel must beat the per-word loop ≥ 10×,
  so the speedup never silently depends on a C compiler being around.
"""

from __future__ import annotations

import time

import pytest

from repro.matching import CompiledRuntime, build_matcher
from repro.matching import kernel

from .workloads import repeated_match_corpus

#: Times the whole stream is re-matched in the timed sections; the first
#: pass warms rows and the kernel program, the rest are steady state.
REPEATS = 5

CORPUS_NAMES = ("mixed-content", "chare", "kore", "deep-alternation")


def _corpus(name: str):
    for corpus_name, tree, stream in repeated_match_corpus():
        if corpus_name == name:
            return tree, stream
    raise KeyError(name)


def _warm_runtime(tree, stream) -> CompiledRuntime:
    """A runtime with rows, acceptance verdicts and kernel program all hot."""
    runtime = CompiledRuntime(build_matcher(tree, verify=False))
    runtime.match_many(stream)
    program = runtime.export_kernel_program()
    assert program is not None, "bench corpora must fit a kernel table"
    kernel.match_corpus(runtime, program, program.encode_corpus(stream))
    return runtime


def _match_per_word(runtime, stream) -> list[bool]:
    accepts_encoded = runtime.accepts_encoded
    encode = runtime.encode
    return [accepts_encoded(encode(word)) for word in stream]


def _match_kernel(runtime, stream) -> list[bool]:
    verdicts, _, _ = kernel.match_words(runtime, stream)
    return verdicts


# ---------------------------------------------------------------------------
# pytest-benchmark timings (enabled with --benchmark-enable)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_per_word_loop(benchmark, name):
    tree, stream = _corpus(name)
    runtime = _warm_runtime(tree, stream)
    verdicts = benchmark(lambda: [_match_per_word(runtime, stream) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(stream)


@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_kernel_pure(benchmark, name, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "pure")
    tree, stream = _corpus(name)
    runtime = _warm_runtime(tree, stream)
    verdicts = benchmark(lambda: [_match_kernel(runtime, stream) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(stream)


@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_kernel_native(benchmark, name, monkeypatch):
    if kernel.native_library() is None:
        pytest.skip("native kernel library not built")
    monkeypatch.setenv("REPRO_KERNEL", "native")
    tree, stream = _corpus(name)
    runtime = _warm_runtime(tree, stream)
    verdicts = benchmark(lambda: [_match_kernel(runtime, stream) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(stream)


# ---------------------------------------------------------------------------
# Correctness and throughput gates (run even with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_kernel_verdicts_identical():
    """Cold and warm kernel passes must agree with the per-word loop."""
    for name, tree, stream in repeated_match_corpus():
        runtime = CompiledRuntime(build_matcher(tree, verify=False))
        reference = _match_per_word(runtime, stream)

        # Cold: a fresh runtime's program is all MISS edges; every verdict
        # comes from the fallback replay — which fills the rows.
        cold_runtime = CompiledRuntime(build_matcher(tree, verify=False))
        cold = _match_kernel(cold_runtime, stream)
        assert cold == reference, f"{name}: cold kernel diverged"

        # Warm: the rebuilt program answers everything without fallback.
        program = cold_runtime.export_kernel_program()
        corpus = program.encode_corpus(stream)
        verdicts, kernel_words, fallback_words = kernel.match_corpus(
            cold_runtime, program, corpus
        )
        assert verdicts == reference, f"{name}: warm kernel diverged"
        assert fallback_words == 0, f"{name}: warm corpus still falls back"
        assert kernel_words == len(stream)


def _best_of(rounds: int, work) -> float:
    """Minimum wall-clock over *rounds* runs (robust against CI descheduling)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        work()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_speedup_at_least_10x(monkeypatch):
    """Pure-Python kernel ≥ 10× the per-word loop on repeated-match streams.

    The gate is pinned to the *pure* backend so it holds on machines with
    no C compiler; the native backend only widens the gap.  Locally the
    aggregate is ~15× (5–20× per family; short-word deep-alternation is
    the low outlier, long-word mixed-content the high one); best-of-3
    timing keeps a descheduled CI runner from tripping the gate without
    a real regression.
    """
    monkeypatch.setenv("REPRO_KERNEL", "pure")
    per_word_total = 0.0
    kernel_total = 0.0
    for name, tree, stream in repeated_match_corpus():
        runtime = _warm_runtime(tree, stream)
        assert _match_kernel(runtime, stream) == _match_per_word(runtime, stream)

        def run_per_word():
            for _ in range(REPEATS):
                _match_per_word(runtime, stream)

        def run_kernel():
            for _ in range(REPEATS):
                _match_kernel(runtime, stream)

        per_word_total += _best_of(3, run_per_word)
        kernel_total += _best_of(3, run_kernel)

    speedup = per_word_total / kernel_total
    assert speedup >= 10.0, f"kernel only {speedup:.2f}x over the per-word loop"
