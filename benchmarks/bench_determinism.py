"""Experiment E1 — determinism testing: linear skeleton test vs Glushkov baseline.

Paper claim (Theorem 3.5 vs. Brüggemann-Klein's test): the skeleton-based
test is O(|e|) while building and checking the Glushkov automaton is
O(σ|e|), i.e. quadratic on the mixed-content family ``(a1+...+am)*``.
Expected shape: the ``linear`` rows grow proportionally to ``m`` while the
``glushkov`` rows grow roughly with ``m²``, so the ratio between the two
widens as the alphabet grows.  The DTD-like corpus rows show the same
comparison on realistic content models.
"""

import pytest

from repro.automata.glushkov import GlushkovAutomaton
from repro.core.determinism import DeterminismChecker

from .workloads import dtd_like_trees, mixed_content_tree

MIXED_SIZES = [64, 256, 1024]


@pytest.mark.parametrize("symbols", MIXED_SIZES)
def test_linear_determinism_mixed_content(benchmark, symbols):
    tree = mixed_content_tree(symbols)
    result = benchmark(lambda: DeterminismChecker(tree).is_deterministic())
    assert result is True


@pytest.mark.parametrize("symbols", MIXED_SIZES)
def test_glushkov_determinism_mixed_content(benchmark, symbols):
    tree = mixed_content_tree(symbols)
    result = benchmark(lambda: GlushkovAutomaton(tree).is_deterministic())
    assert result is True


@pytest.mark.parametrize("models", [200])
def test_linear_determinism_dtd_corpus(benchmark, models):
    trees = dtd_like_trees(models)

    def run():
        return sum(1 for tree in trees if DeterminismChecker(tree).is_deterministic())

    deterministic = benchmark(run)
    assert deterministic > 0


@pytest.mark.parametrize("models", [200])
def test_glushkov_determinism_dtd_corpus(benchmark, models):
    trees = dtd_like_trees(models)

    def run():
        return sum(1 for tree in trees if GlushkovAutomaton(tree).is_deterministic())

    deterministic = benchmark(run)
    assert deterministic > 0
