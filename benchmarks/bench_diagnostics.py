"""Cost of the diagnostics layer vs. the boolean verdict paths.

The PR-9 contract is asymmetric: the untraced verdict path must stay
exactly as fast as before (``Pattern.match_all`` still rides the batch
kernel and returns plain booleans — ``bench_kernel.py`` gates that), and
the *opt-in* diagnostic paths should cost only what they use:

* ``MatchResult`` construction is O(1) — diagnosis is lazy, so a
  ``detail="full"`` batch over mostly-accepting traffic pays one object
  per word, not one replay per word;
* a failure pays one replay of the failing word (plus the repair probes)
  the first time a diagnostic field is read.

This module times the verdict batch, the ``detail="full"`` batch, and
eager failure diagnosis, and pins the laziness/agreement contracts with
always-on gates.  CI exports the timings as ``BENCH_diagnostics.json``
into the perf trajectory.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.diagnostics import MatchResult, diagnose

from .workloads import SEED, bounded_occurrence, chare, deep_alternation, mixed_content

#: Times the stream is re-matched per timed round (first pass warms rows).
REPEATS = 5

_EXPRESSIONS = {
    "mixed-content": lambda: mixed_content(12),
    "chare": lambda: chare(6),
    "kore": lambda: bounded_occurrence(2, blocks=4),
    "deep-alternation": lambda: deep_alternation(5),
}

CORPUS_NAMES = tuple(_EXPRESSIONS)


def _workload(name: str, pool_size: int = 80, stream_length: int = 3200):
    """A warm pattern plus a repeated-match stream (members and mutants)."""
    from repro.regex.words import mutate_word, sample_member

    expr = _EXPRESSIONS[name]()
    pattern = repro.Pattern(expr)
    alphabet = pattern.tree.alphabet.as_list()
    generator = random.Random(SEED)
    pool: list[tuple[str, ...]] = []
    while len(pool) < pool_size:
        member = sample_member(expr, generator)
        pool.append(tuple(member))
        pool.append(tuple(mutate_word(member, alphabet, generator)))
        # mixed-content style families accept every in-alphabet word, so
        # mutation alone never rejects; a foreign symbol always does
        pool.append(tuple(member) + ("§",))
    stream = [generator.choice(pool) for _ in range(stream_length)]
    pattern.match_all(stream)  # warm rows, kernel program and memos
    return pattern, stream


# ---------------------------------------------------------------------------
# pytest-benchmark timings (enabled with --benchmark-enable)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_verdict_batch(benchmark, name):
    """The unchanged boolean path: the baseline the others are read against."""
    pattern, stream = _workload(name)
    verdicts = benchmark(lambda: [pattern.match_all(stream) for _ in range(REPEATS)])
    assert len(verdicts[0]) == len(stream)


@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_full_detail_batch(benchmark, name):
    """``detail="full"``: one lazy MatchResult per word, no eager replays."""
    pattern, stream = _workload(name)
    results = benchmark(
        lambda: [pattern.match_all(stream, detail="full") for _ in range(REPEATS)]
    )
    assert len(results[0]) == len(stream)


@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_diagnose_failures(benchmark, name):
    """Eagerly diagnosing every rejected word of the stream (worst case)."""
    pattern, stream = _workload(name)
    verdicts = pattern.match_all(stream)
    failures = [word for word, ok in zip(stream, verdicts) if not ok]
    assert failures, f"{name}: the stream needs rejected words to diagnose"

    def run():
        return [diagnose(pattern, word).expected for word in failures]

    expected = benchmark(run)
    assert len(expected) == len(failures)


# ---------------------------------------------------------------------------
# Contract gates (run even with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_verdict_path_stays_boolean():
    """The default batch path must keep returning bare booleans."""
    pattern, stream = _workload("mixed-content", pool_size=20, stream_length=200)
    verdicts = pattern.match_all(stream)
    assert all(type(verdict) is bool for verdict in verdicts)


def test_full_detail_agrees_and_stays_lazy():
    """``detail="full"`` flips no verdict and replays nothing up front."""
    for name in CORPUS_NAMES:
        pattern, stream = _workload(name, pool_size=20, stream_length=200)
        plain = pattern.match_all(stream)
        rich = pattern.match_all(stream, detail="full")
        assert [bool(result) for result in rich] == plain, name
        assert all(isinstance(result, MatchResult) for result in rich), name
        # fallback words are pre-seeded from their recorded trace (nothing
        # is walked twice); those seeds must agree with the verdict
        seeded = [result for result in rich if result._diagnosis is not None]
        assert all(result._diagnosis.matched == bool(result) for result in seeded), name
        # laziness: once the first pass has warmed the rows, the kernel
        # answers the whole stream and construction replays nothing
        warm = pattern.match_all(stream, detail="full")
        assert all(result._diagnosis is None for result in warm), name
        # first diagnostic read replays exactly that word, coherently
        miss = next((r for r in rich if not r), None)
        assert miss is not None, f"{name}: stream needs a rejected word"
        assert miss.error_index is not None
        assert miss.diagnosis.matched is False
