"""Experiment E5 — lowest-colored-ancestor matching (Theorem 4.2).

Paper claim: arbitrary deterministic expressions can be matched in
O(|e| + |w| log log |e|) after expected O(|e|) preprocessing.  Expected
shape: for a fixed word, matching time grows only marginally as the
expression size increases (the log log factor), far slower than the
expression itself grows, while the Glushkov baseline pays its whole
transition table up front.
"""

import pytest

from repro.automata.glushkov import GlushkovDFA
from repro.matching import LowestColoredAncestorMatcher

from .workloads import large_deterministic_tree

BLOCKS = [16, 64, 256]


@pytest.mark.parametrize("blocks", BLOCKS)
def test_lca_matcher_matching(benchmark, blocks):
    tree, word = large_deterministic_tree(blocks)
    matcher = LowestColoredAncestorMatcher(tree, verify=False)
    assert benchmark(lambda: matcher.accepts(word)) is True


@pytest.mark.parametrize("blocks", BLOCKS)
def test_lca_matcher_preprocessing(benchmark, blocks):
    tree, _ = large_deterministic_tree(blocks)
    matcher = benchmark(lambda: LowestColoredAncestorMatcher(tree, verify=False))
    assert matcher.color_assignment_count() > 0


@pytest.mark.parametrize("blocks", BLOCKS)
def test_glushkov_dfa_preprocessing_baseline(benchmark, blocks):
    tree, _ = large_deterministic_tree(blocks)
    dfa = benchmark(lambda: GlushkovDFA.from_expression(tree.source))
    assert dfa.automaton.state_count() > 0


@pytest.mark.parametrize("blocks", [64])
def test_glushkov_dfa_matching_baseline(benchmark, blocks):
    tree, word = large_deterministic_tree(blocks)
    dfa = GlushkovDFA.from_expression(tree.source)
    assert benchmark(lambda: dfa.accepts(word)) is True
