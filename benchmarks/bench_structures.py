"""Experiment E9 — micro-benchmarks of the algorithmic substrates.

These pin the per-operation costs the matching bounds rely on: O(1) LCA
queries after linear preprocessing, O(1) lazy-array operations with
constant-time reset, and O(log log U) van Emde Boas predecessor queries.
Expected shape: per-operation cost independent of (or barely growing with)
the structure size.
"""

import random

import pytest

from repro.structures.lazy_array import LazyArray
from repro.structures.lca import LCAIndex
from repro.structures.veb import VanEmdeBoasTree

from .workloads import SEED, chare_tree

QUERIES = 5000


@pytest.mark.parametrize("factors", [64, 512])
def test_lca_queries(benchmark, factors):
    tree = chare_tree(factors)
    index = LCAIndex(tree.root, tree.nodes)
    generator = random.Random(SEED)
    pairs = [(generator.choice(tree.nodes), generator.choice(tree.nodes)) for _ in range(QUERIES)]
    result = benchmark(lambda: sum(1 for a, b in pairs if index.lca(a, b) is not None))
    assert result == QUERIES


@pytest.mark.parametrize("factors", [64, 512])
def test_lca_preprocessing(benchmark, factors):
    tree = chare_tree(factors)
    index = benchmark(lambda: LCAIndex(tree.root, tree.nodes))
    assert len(index) == len(tree.nodes)


@pytest.mark.parametrize("size", [1 << 10, 1 << 14])
def test_lazy_array_operations(benchmark, size):
    generator = random.Random(SEED)
    keys = [generator.randrange(size) for _ in range(QUERIES)]

    def run():
        array = LazyArray(size)
        hits = 0
        for index, key in enumerate(keys):
            array[key] = index
            if array[(key + 1) % size] is not None:
                hits += 1
            if index % 1000 == 999:
                array.reset()
        return hits

    assert benchmark(run) >= 0


@pytest.mark.parametrize("universe", [1 << 10, 1 << 16])
def test_veb_predecessor_queries(benchmark, universe):
    generator = random.Random(SEED)
    tree = VanEmdeBoasTree(universe)
    for _ in range(universe // 8):
        tree.insert(generator.randrange(universe))
    probes = [generator.randrange(universe) for _ in range(QUERIES)]
    result = benchmark(lambda: sum(1 for probe in probes if tree.predecessor(probe) is not None))
    assert result <= QUERIES
