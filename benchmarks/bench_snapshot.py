"""Cold-start cost with and without a persisted warm-state snapshot.

The snapshot subsystem (``docs/snapshot.md``) exists for one number: how
fast a *fresh process* reaches its first verdicts.  A true cold process
pays Section-4 matcher preprocessing plus one structure query per
``(state, symbol)`` pair before the lazy DFA is warm; a
snapshot-preloaded process adopts completed, mmap-backed rows and skips
both — the wrapped matcher is never even built.  This module measures
exactly that, with real processes:

* each sample boots a fresh ``sys.executable``, optionally calls
  :func:`repro.load_snapshot`, then matches the same corpus to its first
  :data:`VERDICT_TARGET` verdicts, reporting wall-clock and verdicts;
* a **verdict-equivalence gate**: both modes must agree with a
  single-threaded, uncompiled, freshly constructed oracle on every word
  — persistence must never change an answer;
* a **throughput gate** (runs even with ``--benchmark-disable``): the
  snapshot-preloaded process must reach its verdicts at least
  :data:`MIN_SPEEDUP`× faster than the true cold process, best-of-3 on
  both sides so a descheduled CI runner cannot fake a regression.

The **v2 leg** (ISSUE 5) repeats the measurement for the workload the
format-v2 sections exist for: an XSD process validating child sequences.
Both children install the schema identically first — build it from its
wire shape and run the UPA determinism check, exactly what the HTTP
service does before serving a single verdict — and the clock then runs
from that schema-ready point to the 1 000th verdict.  The cold child
spends the window building matchers and discovering ``(state, symbol)``
pairs one structure query at a time; the snapshot child spends it
inside :func:`repro.load_snapshot` (every adoption cost on the clock)
and then answers from adopted dense rows and per-element acceptance
memos.  The gate: at least :data:`MIN_SPEEDUP`× faster to the 1 000th
verdict, with oracle verdict-equivalence on every sequence.
"""

from __future__ import annotations

import json
import os
import random
import string
import subprocess
import sys
from pathlib import Path

import pytest

import repro

#: PYTHONPATH entry handed to the measured child processes.
SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

#: First-1k-verdicts is the scenario the ISSUE gates.
VERDICT_TARGET = 1000

#: Snapshot-preloaded cold start must beat a true cold start by this factor.
MIN_SPEEDUP = 3.0

#: Deterministic corpus seed (shared with the oracle).
SEED = 20120521

#: Alphabet width per pattern.  The workload is shaped so the cold
#: differential scales *quadratically* while the shared cost scales
#: linearly: a mixing star over W symbols has W + 1 live states with all
#: W symbols legal in each, so a cold process pays up to ``(W + 1) * W``
#: first-visit structure queries (plus densification) while parsing and
#: the determinism test stay O(W).  At W = 150 the exercised machine is
#: ~22k transitions per pattern.
WIDTH = 150

PATTERN_COUNT = 2

WORDS_PER_PATTERN = VERDICT_TARGET // PATTERN_COUNT

WORD_LENGTH = 60

#: Fraction of words drawn from the full pool (hitting symbols outside
#: the pattern's alphabet, hence rejected) instead of the pattern's own.
REJECT_BIAS = 0.3


def _symbol_pool() -> list[str]:
    """~175 single-character symbols (ASCII + Greek + Cyrillic).

    The paper dialect treats any non-operator character as a symbol, so
    a wide alphabet costs nothing syntactically; each pattern samples
    :data:`WIDTH` of these, and words occasionally step outside the
    sampled subset to produce genuine rejects.
    """
    pool = list(string.ascii_letters + string.digits)
    pool += [chr(code) for code in range(0x0391, 0x03AA) if chr(code).isalpha()]
    pool += [chr(code) for code in range(0x03B1, 0x03CA)]
    pool += [chr(code) for code in range(0x0410, 0x0450)]
    return pool

#: The measured child: boots cold (optionally adopting the snapshot),
#: compiles each pattern and matches its words one request at a time,
#: then reports elapsed wall-clock and the verdict bits.
_CHILD = """\
import json, sys, time
mode, corpus_path, snapshot_path = sys.argv[1], sys.argv[2], sys.argv[3]
import repro
with open(corpus_path) as handle:
    corpus = json.load(handle)
start = time.perf_counter()
adopted = 0
if mode == "snapshot":
    adopted = repro.load_snapshot(snapshot_path)["rows_loaded"]
verdicts = {}
count = 0
for expr in corpus["patterns"]:
    pattern = repro.compile(expr)
    bits = []
    for word in corpus["words"][expr]:
        bits.append("1" if pattern.match(word) else "0")
        count += 1
    verdicts[expr] = "".join(bits)
elapsed = time.perf_counter() - start
print(json.dumps({"elapsed": elapsed, "count": count, "adopted": adopted,
                  "verdicts": verdicts}))
"""


def _patterns() -> list[str]:
    """PATTERN_COUNT deterministic mixing stars over distinct alphabets.

    ``(s1+s2+...+sW)*`` with distinct symbols is trivially deterministic,
    and every symbol is legal after every symbol — the densest possible
    transition table for the cold process to discover one structure
    query at a time.
    """
    rng = random.Random(SEED)
    pool = _symbol_pool()
    return [
        "(" + "+".join(rng.sample(pool, WIDTH)) + ")*" for _ in range(PATTERN_COUNT)
    ]


def _corpus() -> dict:
    """VERDICT_TARGET member-biased words spread over the patterns."""
    rng = random.Random(SEED + 1)
    pool = _symbol_pool()
    patterns = _patterns()
    words: dict[str, list[str]] = {}
    for expr in patterns:
        alphabet = expr[1:-2].split("+")
        pattern_words = []
        for _ in range(WORDS_PER_PATTERN):
            source = pool if rng.random() < REJECT_BIAS else alphabet
            pattern_words.append("".join(rng.choice(source) for _ in range(WORD_LENGTH)))
        words[expr] = pattern_words
    return {"patterns": patterns, "words": words}


def _oracle(corpus: dict) -> dict[str, str]:
    """Fresh uncompiled single-threaded verdicts for every word."""
    verdicts = {}
    for expr in corpus["patterns"]:
        reference = repro.Pattern(expr, compiled=False)
        verdicts[expr] = "".join(
            "1" if reference.match(word) else "0" for word in corpus["words"][expr]
        )
    return verdicts


def _run_child(mode: str, corpus_path: str, snapshot_path: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, corpus_path, snapshot_path],
        check=True,
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    return json.loads(output.stdout)


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """The corpus file, the snapshot file and the oracle verdicts."""
    directory = tmp_path_factory.mktemp("snapshot-bench")
    corpus = _corpus()
    corpus_path = directory / "corpus.json"
    corpus_path.write_text(json.dumps(corpus))
    # Warm this process and persist its rows (complete=True densifies
    # everything the corpus exercised).
    for expr in corpus["patterns"]:
        pattern = repro.compile(expr)
        for word in corpus["words"][expr]:
            pattern.match(word)
    snapshot_path = directory / "rows.snapshot"
    saved = repro.save_snapshot(str(snapshot_path))
    assert saved["patterns"] >= PATTERN_COUNT, saved
    return {
        "corpus_path": str(corpus_path),
        "snapshot_path": str(snapshot_path),
        "oracle": _oracle(corpus),
    }


# ---------------------------------------------------------------------------
# pytest-benchmark timings (enabled with --benchmark-enable)
# ---------------------------------------------------------------------------


def test_cold_process_first_1k_verdicts(benchmark, workload):
    result = benchmark.pedantic(
        lambda: _run_child("cold", workload["corpus_path"], workload["snapshot_path"]),
        rounds=3,
        iterations=1,
    )
    assert result["count"] == VERDICT_TARGET


def test_snapshot_process_first_1k_verdicts(benchmark, workload):
    result = benchmark.pedantic(
        lambda: _run_child("snapshot", workload["corpus_path"], workload["snapshot_path"]),
        rounds=3,
        iterations=1,
    )
    assert result["count"] == VERDICT_TARGET
    assert result["adopted"] > 0


# ---------------------------------------------------------------------------
# Correctness and throughput gates (run even with --benchmark-disable)
# ---------------------------------------------------------------------------


def test_snapshot_verdicts_identical_to_oracle(workload):
    """Both process modes must agree with the uncompiled oracle everywhere."""
    cold = _run_child("cold", workload["corpus_path"], workload["snapshot_path"])
    warm = _run_child("snapshot", workload["corpus_path"], workload["snapshot_path"])
    assert warm["adopted"] > 0, "snapshot was not adopted"
    assert cold["verdicts"] == workload["oracle"], "cold process diverged from the oracle"
    assert warm["verdicts"] == workload["oracle"], "snapshot process diverged from the oracle"
    oracle_bits = "".join(workload["oracle"].values())
    assert "0" in oracle_bits and "1" in oracle_bits  # both verdicts exercised


def test_snapshot_cold_start_speedup_at_least_3x(workload):
    """Snapshot-preloaded time-to-first-1k-verdicts must be >= 3x faster.

    Locally the gap is 5-10x (the snapshot child never builds a Section-4
    matcher at all); best-of-3 on both sides keeps a descheduled shared
    runner from deciding the verdict.
    """
    cold = min(
        _run_child("cold", workload["corpus_path"], workload["snapshot_path"])["elapsed"]
        for _ in range(3)
    )
    warm = min(
        _run_child("snapshot", workload["corpus_path"], workload["snapshot_path"])["elapsed"]
        for _ in range(3)
    )
    speedup = cold / warm
    assert speedup >= MIN_SPEEDUP, (
        f"snapshot-preloaded cold start only {speedup:.2f}x faster "
        f"(cold {cold * 1000:.1f}ms vs snapshot {warm * 1000:.1f}ms)"
    )


# ---------------------------------------------------------------------------
# The v2 leg: a snapshot-preloaded XSD process (rows + validator memos)
# ---------------------------------------------------------------------------

#: Element names per content model: a wide unbounded choice, so — as in
#: the rows leg — every name is legal after every name and the cold
#: differential scales quadratically in the alphabet (``(W + 1) · W``
#: first-visit structure queries per model).
XSD_WIDTH = 150

XSD_MODELS = 2

XSD_SEQUENCE_LENGTH = 60

XSD_VALIDATIONS_PER_MODEL = VERDICT_TARGET // XSD_MODELS

#: The measured XSD child.  Both modes install the schema identically —
#: build it from its wire shape and run the UPA determinism check,
#: exactly what ``POST /validate`` does before answering a single
#: verdict — and the clock runs from that schema-ready point to the
#: last verdict.  The snapshot child pays its whole adoption inside the
#: window (``load_snapshot`` is the first thing on the clock).
_XSD_CHILD = """\
import json, sys, time
mode, corpus_path, snapshot_path = sys.argv[1], sys.argv[2], sys.argv[3]
import repro
from repro.xml.xsd import schema_from_dict
with open(corpus_path) as handle:
    corpus = json.load(handle)
schema = schema_from_dict(corpus["schema"])
assert schema.is_valid_schema()  # the serving layer's schema-install step
start = time.perf_counter()
adopted = {"rows": 0, "tables": 0, "memo_entries": 0}
if mode == "snapshot":
    report = repro.load_snapshot(snapshot_path)
    adopted = {"rows": report["rows_loaded"], "tables": report["tables_loaded"],
               "memo_entries": report["memo_entries_loaded"]}
bits = []
for name, children in corpus["sequences"]:
    bits.append("1" if schema.validate_children(name, children) else "0")
elapsed = time.perf_counter() - start
print(json.dumps({"elapsed": elapsed, "count": len(bits), "adopted": adopted,
                  "verdicts": "".join(bits)}))
"""


def _xsd_corpus() -> dict:
    """An XSD wire schema plus an all-distinct validation corpus."""
    rng = random.Random(SEED + 2)
    elements: dict[str, dict] = {}
    names_by_model: dict[str, list[str]] = {}
    for index in range(XSD_MODELS):
        model = f"record{index}"
        names = [f"e{index}x{position}" for position in range(XSD_WIDTH)]
        names_by_model[model] = names
        elements[model] = {
            "kind": "choice",
            "min": 0,
            "max": None,
            "children": [
                {"kind": "element", "name": name, "min": 1, "max": 1} for name in names
            ],
        }
    sequences: list[list] = []
    for model, names in names_by_model.items():
        # Every sequence is distinct: a cold process cannot ride its own
        # freshly built memo, while the snapshot process adopts the warm
        # process's memo covering this exact corpus (the deployment
        # scenario: the fleet has already seen today's documents).
        for _ in range(XSD_VALIDATIONS_PER_MODEL):
            children = [rng.choice(names) for _ in range(XSD_SEQUENCE_LENGTH)]
            if rng.random() < REJECT_BIAS:  # a foreign name makes the sequence invalid
                children[rng.randrange(len(children))] = "zz"
            sequences.append([model, children])
    return {"schema": {"root": None, "elements": elements}, "sequences": sequences}


def _xsd_oracle(corpus: dict) -> str:
    """Verdicts from a fresh, uncompiled schema (no runtime, no memos)."""
    from repro.xml.xsd import schema_from_dict

    schema = schema_from_dict(corpus["schema"])
    schema.compiled = False
    return "".join(
        "1" if schema.validate_children(name, children) else "0"
        for name, children in corpus["sequences"]
    )


def _run_xsd_child(mode: str, corpus_path: str, snapshot_path: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", _XSD_CHILD, mode, corpus_path, snapshot_path],
        check=True,
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    return json.loads(output.stdout)


@pytest.fixture(scope="module")
def xsd_workload(tmp_path_factory):
    """The XSD corpus file, the v2 snapshot and the oracle verdicts."""
    from repro.xml.xsd import schema_from_dict

    directory = tmp_path_factory.mktemp("snapshot-v2-bench")
    corpus = _xsd_corpus()
    corpus_path = directory / "xsd-corpus.json"
    corpus_path.write_text(json.dumps(corpus))
    # Drop any patterns earlier fixtures left in the process cache:
    # save_snapshot persists the whole cache, and stowaway patterns
    # would be re-compiled inside the measured child's load window.
    repro.purge()
    # Warm this process exactly like the measured child, then persist:
    # the snapshot carries the content models' dense rows and the
    # per-element acceptance memos the corpus exercised.
    schema = schema_from_dict(corpus["schema"])
    for name, children in corpus["sequences"]:
        schema.validate_children(name, children)
    snapshot_path = directory / "xsd-state.snapshot"
    saved = repro.save_snapshot(str(snapshot_path))
    assert saved["patterns"] >= XSD_MODELS, saved
    assert saved["memo_patterns"] >= XSD_MODELS, saved
    return {
        "corpus_path": str(corpus_path),
        "snapshot_path": str(snapshot_path),
        "oracle": _xsd_oracle(corpus),
    }


def test_xsd_cold_process_first_1k_validations(benchmark, xsd_workload):
    result = benchmark.pedantic(
        lambda: _run_xsd_child(
            "cold", xsd_workload["corpus_path"], xsd_workload["snapshot_path"]
        ),
        rounds=3,
        iterations=1,
    )
    assert result["count"] == VERDICT_TARGET


def test_xsd_snapshot_process_first_1k_validations(benchmark, xsd_workload):
    result = benchmark.pedantic(
        lambda: _run_xsd_child(
            "snapshot", xsd_workload["corpus_path"], xsd_workload["snapshot_path"]
        ),
        rounds=3,
        iterations=1,
    )
    assert result["count"] == VERDICT_TARGET
    assert result["adopted"]["rows"] > 0
    assert result["adopted"]["memo_entries"] > 0


def test_xsd_snapshot_verdicts_identical_to_oracle(xsd_workload):
    """Both XSD process modes must agree with the uncompiled oracle."""
    cold = _run_xsd_child(
        "cold", xsd_workload["corpus_path"], xsd_workload["snapshot_path"]
    )
    warm = _run_xsd_child(
        "snapshot", xsd_workload["corpus_path"], xsd_workload["snapshot_path"]
    )
    assert warm["adopted"]["rows"] > 0, "snapshot rows were not adopted"
    assert warm["adopted"]["memo_entries"] > 0, "validator memos were not adopted"
    assert cold["verdicts"] == xsd_workload["oracle"], "cold XSD process diverged"
    assert warm["verdicts"] == xsd_workload["oracle"], "snapshot XSD process diverged"
    assert "0" in xsd_workload["oracle"] and "1" in xsd_workload["oracle"]


def test_xsd_snapshot_first_1k_validations_speedup_at_least_3x(xsd_workload):
    """The ISSUE-5 gate: a snapshot-preloaded XSD process reaches its
    first 1k validations >= 3x faster than a cold one (rows answer the
    transition traffic, memos answer repeated sequences outright)."""
    cold = min(
        _run_xsd_child(
            "cold", xsd_workload["corpus_path"], xsd_workload["snapshot_path"]
        )["elapsed"]
        for _ in range(3)
    )
    warm = min(
        _run_xsd_child(
            "snapshot", xsd_workload["corpus_path"], xsd_workload["snapshot_path"]
        )["elapsed"]
        for _ in range(3)
    )
    speedup = cold / warm
    assert speedup >= MIN_SPEEDUP, (
        f"snapshot-preloaded XSD process only {speedup:.2f}x faster "
        f"(cold {cold * 1000:.1f}ms vs snapshot {warm * 1000:.1f}ms)"
    )
